"""Tests for the multicast tree: structure, DS distances, ancestor
queries, subtrees, and the random spanning-subtree generator."""

import networkx as nx
import numpy as np
import pytest

from repro.net.generators import TopologyConfig, binary_tree_topology, random_backbone
from repro.net.mcast_tree import MulticastTree, random_multicast_tree
from repro.net.topology import NodeKind, Topology


@pytest.fixture
def small_tree():
    """Hand-built tree:

        S(4)
         |
        r0
        / \\
      r1   c5
      / \\
    c2   c3        (c = clients, r = routers)
    """
    topo = Topology()
    r0, r1 = topo.add_nodes(2, NodeKind.ROUTER)
    c2, c3 = topo.add_nodes(2, NodeKind.CLIENT)
    s = topo.add_node(NodeKind.SOURCE)
    c5 = topo.add_node(NodeKind.CLIENT)
    topo.add_link(s, r0, delay=1.0)
    topo.add_link(r0, r1, delay=2.0)
    topo.add_link(r0, c5, delay=3.0)
    topo.add_link(r1, c2, delay=4.0)
    topo.add_link(r1, c3, delay=5.0)
    tree = MulticastTree(topo, s, {r0: s, r1: r0, c5: r0, c2: r1, c3: r1})
    return topo, tree


class TestTreeStructure:
    def test_members(self, small_tree):
        _, tree = small_tree
        assert tree.members == [0, 1, 2, 3, 4, 5]
        assert tree.num_members == 6
        assert tree.num_tree_links == 5

    def test_parent_child(self, small_tree):
        _, tree = small_tree
        assert tree.parent(tree.root) is None
        assert tree.parent(1) == 0
        assert tree.children(0) == [1, 5]
        assert tree.children(2) == []

    def test_leaves_and_clients(self, small_tree):
        _, tree = small_tree
        assert sorted(tree.leaves) == [2, 3, 5]
        assert tree.clients == [2, 3, 5]

    def test_is_leaf(self, small_tree):
        _, tree = small_tree
        assert tree.is_leaf(2)
        assert not tree.is_leaf(0)
        assert not tree.is_leaf(tree.root)

    def test_contains(self, small_tree):
        _, tree = small_tree
        assert tree.contains(3)
        assert not tree.contains(99)

    def test_non_member_queries_raise(self, small_tree):
        _, tree = small_tree
        with pytest.raises(ValueError):
            tree.depth(99)
        with pytest.raises(ValueError):
            tree.parent(99)
        with pytest.raises(ValueError):
            tree.children(99)

    def test_root_cannot_have_parent(self, small_tree):
        topo, _ = small_tree
        with pytest.raises(ValueError):
            MulticastTree(topo, 4, {4: 0})

    def test_tree_edge_must_exist_in_topology(self):
        topo = Topology()
        topo.add_nodes(3)
        topo.add_link(0, 1, delay=1.0)
        with pytest.raises(ValueError):
            MulticastTree(topo, 0, {1: 0, 2: 0})  # no 0-2 link

    def test_parent_outside_tree_rejected(self, small_tree):
        topo, _ = small_tree
        with pytest.raises(ValueError):
            MulticastTree(topo, 4, {1: 0})  # parent 0 not a member


class TestDistances:
    def test_depth(self, small_tree):
        _, tree = small_tree
        assert tree.depth(4) == 0
        assert tree.depth(0) == 1
        assert tree.depth(1) == 2
        assert tree.depth(2) == 3
        assert tree.depth(5) == 2

    def test_delay_from_root(self, small_tree):
        _, tree = small_tree
        assert tree.delay_from_root(4) == 0.0
        assert tree.delay_from_root(2) == pytest.approx(1.0 + 2.0 + 4.0)
        assert tree.delay_from_root(5) == pytest.approx(1.0 + 3.0)

    def test_path_to_root(self, small_tree):
        _, tree = small_tree
        assert tree.path_to_root(2) == [2, 1, 0, 4]
        assert tree.path_from_root(2) == [4, 0, 1, 2]
        assert tree.path_to_root(tree.root) == [4]

    def test_tree_path_between_leaves(self, small_tree):
        _, tree = small_tree
        assert tree.tree_path(2, 3) == [2, 1, 3]
        assert tree.tree_path(2, 5) == [2, 1, 0, 5]
        assert tree.tree_path(2, 2) == [2]


class TestAncestorQueries:
    def test_first_common_router(self, small_tree):
        _, tree = small_tree
        assert tree.first_common_router(2, 3) == 1
        assert tree.first_common_router(2, 5) == 0
        assert tree.first_common_router(2, 4) == 4
        assert tree.first_common_router(2, 1) == 1

    def test_ds(self, small_tree):
        _, tree = small_tree
        assert tree.ds(2, 3) == 2  # meet at r1, depth 2
        assert tree.ds(2, 5) == 1  # meet at r0, depth 1
        assert tree.ds(3, 2) == 2  # symmetric

    def test_is_ancestor(self, small_tree):
        _, tree = small_tree
        assert tree.is_ancestor(0, 2)
        assert tree.is_ancestor(2, 2)
        assert not tree.is_ancestor(5, 2)
        assert tree.is_ancestor(tree.root, 5)

    def test_top_level_subgroup(self, small_tree):
        _, tree = small_tree
        # Source has one child r0; every member's subgroup root is r0.
        for node in (0, 1, 2, 3, 5):
            assert tree.top_level_subgroup(node) == 0
        assert tree.top_level_subgroup(tree.root) == tree.root

    def test_lca_matches_networkx(self):
        topo = random_backbone(
            TopologyConfig(num_routers=40), np.random.default_rng(11)
        )
        tree = random_multicast_tree(topo, np.random.default_rng(12))
        g = nx.DiGraph()
        for node in tree.members:
            parent = tree.parent(node)
            if parent is not None:
                g.add_edge(parent, node)
        members = tree.members
        pairs = [(members[i], members[-1 - i]) for i in range(0, len(members) // 2, 3)]
        for u, v in pairs:
            expected = nx.lowest_common_ancestor(g, u, v)
            assert tree.first_common_router(u, v) == expected


class TestSubtrees:
    def test_subtree_nodes(self, small_tree):
        _, tree = small_tree
        assert tree.subtree_nodes(1) == [1, 2, 3]
        assert tree.subtree_nodes(4) == [0, 1, 2, 3, 4, 5]
        assert tree.subtree_nodes(5) == [5]

    def test_subtree_clients(self, small_tree):
        _, tree = small_tree
        assert tree.subtree_clients(1) == [2, 3]
        assert tree.subtree_clients(0) == [2, 3, 5]

    def test_subtree_link_count(self, small_tree):
        _, tree = small_tree
        assert tree.subtree_link_count(1) == 2
        assert tree.subtree_link_count(2) == 0
        assert tree.subtree_link_count(4) == 5


class TestRandomMulticastTree:
    @pytest.fixture
    def random_pair(self):
        topo = random_backbone(
            TopologyConfig(num_routers=60), np.random.default_rng(21)
        )
        tree = random_multicast_tree(topo, np.random.default_rng(22))
        return topo, tree

    def test_spans_whole_connected_topology(self, random_pair):
        topo, tree = random_pair
        assert tree.num_members == topo.num_nodes

    def test_rooted_at_source(self, random_pair):
        topo, tree = random_pair
        assert tree.root == topo.source

    def test_leaves_marked_as_clients(self, random_pair):
        topo, tree = random_pair
        for leaf in tree.leaves:
            assert topo.kind(leaf) in (NodeKind.CLIENT, NodeKind.SOURCE)
        assert len(tree.clients) >= 1

    def test_uses_only_topology_links(self, random_pair):
        topo, tree = random_pair
        for node in tree.members:
            parent = tree.parent(node)
            if parent is not None:
                assert topo.has_link(node, parent)

    def test_reproducible(self):
        config = TopologyConfig(num_routers=30)
        results = []
        for _ in range(2):
            topo = random_backbone(config, np.random.default_rng(1))
            tree = random_multicast_tree(topo, np.random.default_rng(2))
            results.append({n: tree.parent(n) for n in tree.members})
        assert results[0] == results[1]

    def test_depths_consistent_with_parents(self, random_pair):
        _, tree = random_pair
        for node in tree.members:
            parent = tree.parent(node)
            if parent is None:
                assert tree.depth(node) == 0
            else:
                assert tree.depth(node) == tree.depth(parent) + 1

    def test_binary_tree_client_depths(self):
        topo = binary_tree_topology(depth=3)
        # Build the natural tree by BFS from the source.
        tree = random_multicast_tree(topo, np.random.default_rng(0))
        # The only spanning subtree of a tree topology is the tree itself:
        # every client sits depth+1 hops below the root router + source hop.
        # Depths: S=0, root router=1, two more router levels, client=4.
        for client in topo.clients:
            assert tree.depth(client) == 4


class TestPruneGraftClone:
    """Dynamic membership mutations: leaf prune/graft, structural clone,
    and the epoch counter that invalidates plan-cache fingerprints."""

    def test_prune_leaf_removes_and_returns_graft_point(self, small_tree):
        _, tree = small_tree
        parent = tree.prune_leaf(5)
        assert parent == 0
        assert not tree.contains(5)
        assert tree.clients == [2, 3]
        assert 5 not in tree.children(0)
        # Derived structure stays queryable and consistent.
        assert tree.depth(3) == tree.depth(1) + 1
        assert tree.first_common_router(2, 3) == 1

    def test_prune_rejects_root_interior_and_unknown(self, small_tree):
        _, tree = small_tree
        with pytest.raises(ValueError):
            tree.prune_leaf(tree.root)
        with pytest.raises(ValueError):
            tree.prune_leaf(1)  # interior: load-bearing for 2 and 3
        with pytest.raises(ValueError):
            tree.prune_leaf(99)

    def test_graft_restores_original_structure(self, small_tree):
        _, tree = small_tree
        reference = tree.clone()
        parent = tree.prune_leaf(5)
        tree.graft_leaf(5, parent)
        assert tree.contains(5)
        assert tree.clients == reference.clients
        for node in reference.members:
            assert tree.parent(node) == reference.parent(node)
            assert tree.depth(node) == reference.depth(node)
        assert tree.first_common_router(5, 2) == reference.first_common_router(5, 2)

    def test_graft_validation(self, small_tree):
        _, tree = small_tree
        with pytest.raises(ValueError):
            tree.graft_leaf(5, 0)  # already a member
        tree.prune_leaf(5)
        with pytest.raises(ValueError):
            tree.graft_leaf(5, 99)  # parent not a member
        with pytest.raises(ValueError):
            tree.graft_leaf(5, 1)  # no (1,5) link in the topology

    def test_mutations_bump_epoch(self, small_tree):
        _, tree = small_tree
        assert tree.membership_epoch == 0
        parent = tree.prune_leaf(5)
        assert tree.membership_epoch == 1
        tree.graft_leaf(5, parent)
        assert tree.membership_epoch == 2

    def test_clone_is_independent(self, small_tree):
        _, tree = small_tree
        copy = tree.clone()
        copy.prune_leaf(5)
        # The original is untouched — structure and epoch alike.
        assert tree.contains(5)
        assert tree.membership_epoch == 0
        assert copy.membership_epoch == 1
        assert tree.clients == [2, 3, 5]
        assert copy.clients == [2, 3]
        # And the copy shares the topology object (unmutated by design).
        assert copy.topology is tree.topology
