"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == ["rp", "srm", "rma"]
        assert args.routers == 100

    def test_figure_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "xyz"])

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.seeds == [1]
        assert args.intensity is None
        assert args.routers == 60
        assert args.packets == 20


class TestRunCommand:
    def test_run_prints_summary_table(self, capsys):
        rc = main([
            "run", "--routers", "20", "--packets", "5", "--seed", "3",
            "--protocol", "rp",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RP" in out
        assert "latency ms" in out

    def test_run_multiple_protocols_share_network(self, capsys):
        rc = main([
            "run", "--routers", "20", "--packets", "5", "--seed", "3",
            "--protocol", "rp", "srm",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RP" in out and "SRM" in out

    def test_run_naive_protocols(self, capsys):
        rc = main([
            "run", "--routers", "20", "--packets", "5", "--seed", "3",
            "--protocol", "random", "nearest",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RANDOM" in out and "NEAREST" in out


class TestFigureCommand:
    def test_tiny_figure_5(self, capsys, monkeypatch):
        import repro.cli as cli
        import repro.experiments.figures as figures

        # Shrink the sweep so the test stays fast.
        monkeypatch.setattr(figures, "FIG5_NUM_ROUTERS", (15, 25))
        monkeypatch.setattr(
            cli, "run_client_sweep",
            lambda **kw: figures.run_client_sweep(
                num_routers=(15, 25), **kw
            ),
        )
        rc = main(["figure", "5", "--packets", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "RP" in out


class TestPlanCommand:
    def test_plan_prints_strategies(self, capsys):
        rc = main(["plan", "--routers", "20", "--seed", "3", "--limit", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "prioritized list" in out
        assert "E[delay] ms" in out

    def test_plan_specific_client(self, capsys):
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import build_scenario

        built = build_scenario(
            ScenarioConfig(seed=3, num_routers=20, loss_prob=0.05)
        )
        client = built.clients[0]
        rc = main([
            "plan", "--routers", "20", "--seed", "3",
            "--client", str(client),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert str(client) in out


class TestRealismFlags:
    def test_run_with_jitter_and_congestion(self, capsys):
        rc = main([
            "run", "--routers", "15", "--packets", "4", "--seed", "2",
            "--protocol", "rp", "--jitter", "0.2", "--congestion", "0.05",
        ])
        assert rc == 0
        assert "RP" in capsys.readouterr().out

    def test_plan_accepts_realism_flags(self, capsys):
        rc = main([
            "plan", "--routers", "15", "--seed", "2", "--limit", "2",
            "--jitter", "0.1",
        ])
        assert rc == 0


class TestChaosCommand:
    def test_chaos_runs_and_reports_zero_violations(self, capsys, tmp_path):
        out_path = tmp_path / "chaos.json"
        rc = main([
            "chaos", "--seeds", "1", "--intensity", "0.0", "0.4",
            "--routers", "25", "--packets", "5",
            "--save", str(out_path),
        ])
        assert rc == 0  # non-zero would mean a liveness violation
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "liveness violations: 0" in out
        for name in ("RP", "SRM", "RMA", "SOURCE", "NEAREST"):
            assert name in out
        assert out_path.exists()

    def test_chaos_load_rerenders_saved_sweep(self, capsys, tmp_path):
        from repro.experiments.chaos import run_chaos_sweep

        path = tmp_path / "chaos.json"
        run_chaos_sweep(
            seeds=(1,), intensities=(0.3,), num_routers=20, num_packets=4
        ).save(path)
        rc = main(["chaos", "--load", str(path)])
        assert rc == 0
        assert "Chaos sweep" in capsys.readouterr().out


class TestRunnerArtifacts:
    def test_run_protocol_detailed_exposes_collectors(self):
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import build_scenario, run_protocol_detailed
        from repro.protocols.rp import RPProtocolFactory

        built = build_scenario(
            ScenarioConfig(seed=4, num_routers=20, loss_prob=0.05,
                           num_packets=5)
        )
        artifacts = run_protocol_detailed(built, RPProtocolFactory())
        assert artifacts.summary.fully_recovered
        assert artifacts.log.num_detected == artifacts.summary.losses_detected
        assert artifacts.ledger.recovery_hops == artifacts.summary.recovery_hops
        stats = artifacts.log.per_client_stats()
        assert sum(n for n, _, _ in stats.values()) == artifacts.log.num_detected


class TestTraceCommand:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.protocol == "rp"
        assert args.sample_rate == 1.0
        assert args.worst == 5
        assert args.perfetto is None and args.spans is None

    def test_trace_prints_breakdown_and_exports(self, capsys, tmp_path):
        perfetto = tmp_path / "trace.json"
        spans = tmp_path / "spans.jsonl"
        rc = main([
            "trace", "--routers", "30", "--packets", "10", "--seed", "5",
            "--perfetto", str(perfetto), "--spans", str(spans),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "request_transit" in out
        import json

        doc = json.loads(perfetto.read_text())
        assert doc["traceEvents"]
        assert spans.read_text().strip()

    def test_trace_same_seed_is_reproducible(self, capsys, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        common = ["trace", "--routers", "25", "--packets", "8", "--seed", "9"]
        assert main(common + ["--spans", str(a)]) == 0
        assert main(common + ["--spans", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()


class TestHealthCommand:
    def test_health_defaults(self):
        args = build_parser().parse_args(["health"])
        assert args.protocol == "rp"
        assert args.window == 50.0
        assert args.max_windows == 512
        assert args.stall_windows == 8
        assert args.blackhole == 0.0
        assert args.label == "run"
        assert args.diff is None and not args.json

    def test_health_clean_run_exits_zero(self, capsys):
        rc = main([
            "health", "--routers", "30", "--packets", "6", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK: no invariant violations" in out
        assert "windows:" in out

    def test_health_fingerprint_diff_round_trip(self, capsys, tmp_path):
        fp = tmp_path / "fp.json"
        ledger = tmp_path / "ledger.jsonl"
        common = [
            "health", "--routers", "30", "--packets", "6", "--seed", "1",
        ]
        assert main(common + ["--fingerprint", str(fp)]) == 0
        assert main(common + ["--ledger", str(ledger)]) == 0
        capsys.readouterr()
        assert main(["health", "--diff", str(fp), str(ledger)]) == 0
        assert "MATCH" in capsys.readouterr().out
