"""Tests for the event-trace recorder."""

import pytest

from repro.sim.packet import Packet, PacketKind
from repro.sim.trace import TraceFilter, TraceKind, TraceRecorder

from tests.sim.test_network import CA, CB, REQ, S, build_net


class TestRecording:
    def test_unicast_trace_has_transmits_and_delivery(self):
        _, _, events, net = build_net()
        recorder = TraceRecorder().attach(net)
        net.send_unicast(S, CA, REQ)
        events.run()
        transmits = recorder.of_kind(TraceKind.TRANSMIT)
        assert [(e.peer, e.node) for e in transmits] == [(S, 0), (0, CA)]
        deliveries = recorder.deliveries_to(CA)
        assert len(deliveries) == 1
        assert deliveries[0].time == pytest.approx(4.0)

    def test_drop_recorded(self):
        _, _, events, net = build_net(loss_prob=0.999999, seed=1)
        recorder = TraceRecorder().attach(net)
        net.send_unicast(S, CA, REQ)
        events.run()
        assert len(recorder.drops()) == 1
        assert recorder.deliveries_to(CA) == []

    def test_path_of_follows_multicast(self):
        _, tree, events, net = build_net()
        recorder = TraceRecorder().attach(net)
        net.multicast_subtree(S, S, Packet(PacketKind.DATA, 0, origin=S))
        events.run()
        path = recorder.path_of(PacketKind.DATA, 0)
        assert len(path) == tree.num_tree_links
        assert (S, 0) in path

    def test_detach_restores_network(self):
        _, _, events, net = build_net()
        recorder = TraceRecorder().attach(net)
        recorder.detach()
        net.send_unicast(S, CA, REQ)
        events.run()
        assert recorder.events == []

    def test_double_attach_rejected(self):
        _, _, _, net = build_net()
        recorder = TraceRecorder().attach(net)
        with pytest.raises(RuntimeError):
            recorder.attach(net)

    def test_event_budget_enforced(self):
        _, _, events, net = build_net()
        recorder = TraceRecorder(max_events=1).attach(net)
        with pytest.raises(RuntimeError):
            net.send_unicast(S, CA, REQ)
            events.run()

    def test_max_events_validated(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_events=0)


class TestFiltering:
    def test_kind_filter(self):
        _, _, events, net = build_net()
        recorder = TraceRecorder(
            TraceFilter(packet_kinds=frozenset({PacketKind.DATA}))
        ).attach(net)
        net.send_unicast(S, CA, REQ)
        net.multicast_subtree(S, S, Packet(PacketKind.DATA, 0, origin=S))
        events.run()
        assert all(e.packet_kind is PacketKind.DATA for e in recorder.events)
        assert recorder.events

    def test_seq_filter(self):
        _, _, events, net = build_net()
        recorder = TraceRecorder(TraceFilter(seqs=frozenset({1}))).attach(net)
        for seq in (0, 1, 2):
            net.multicast_subtree(S, S, Packet(PacketKind.DATA, seq, origin=S))
        events.run()
        assert {e.seq for e in recorder.events} == {1}

    def test_node_filter_matches_either_endpoint(self):
        _, _, events, net = build_net()
        recorder = TraceRecorder(TraceFilter(nodes=frozenset({CB}))).attach(net)
        net.multicast_subtree(S, S, Packet(PacketKind.DATA, 0, origin=S))
        events.run()
        assert recorder.events
        for e in recorder.events:
            assert CB in (e.node, e.peer)


class TestRender:
    def test_render_truncates(self):
        _, _, events, net = build_net()
        recorder = TraceRecorder().attach(net)
        for seq in range(5):
            net.multicast_subtree(S, S, Packet(PacketKind.DATA, seq, origin=S))
        events.run()
        text = recorder.render(limit=3)
        assert "... and" in text
        assert "transmit" in text
