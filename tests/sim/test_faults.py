"""Tests for the fault-injection subsystem (schedules + live injector)."""

import numpy as np
import pytest

from repro.net.topology import Link
from repro.sim.faults import (
    CrashWindow,
    FaultInjector,
    FaultSchedule,
    GilbertElliottParams,
    LinkDownWindow,
    LivenessError,
    LivenessReport,
    RecoveryLivenessChecker,
    random_fault_schedule,
)
from repro.sim.packet import Packet, PacketKind


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestScheduleValidation:
    def test_crash_window_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            CrashWindow(node=1, start=-1.0, end=2.0)
        with pytest.raises(ValueError):
            CrashWindow(node=1, start=5.0, end=2.0)

    def test_link_down_window_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            LinkDownWindow(u=0, v=1, start=3.0, end=1.0)

    def test_gilbert_elliott_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            GilbertElliottParams(p_enter_bad=1.5, p_exit_bad=0.5)
        with pytest.raises(ValueError):
            GilbertElliottParams(p_enter_bad=0.1, p_exit_bad=0.5, bad_loss=2.0)
        with pytest.raises(ValueError):
            GilbertElliottParams(p_enter_bad=0.1, p_exit_bad=0.5, good_loss=-0.1)

    def test_blackhole_probs_validated(self):
        with pytest.raises(ValueError):
            FaultSchedule(request_blackhole_prob=1.5)
        with pytest.raises(ValueError):
            FaultSchedule(repair_blackhole_prob=-0.1)

    def test_null_schedule(self):
        assert FaultSchedule.none().is_null
        assert FaultSchedule().is_null
        assert not FaultSchedule(
            crash_windows=(CrashWindow(1, 0.0, 1.0),)
        ).is_null
        assert not FaultSchedule(request_blackhole_prob=0.1).is_null
        assert not FaultSchedule(
            gilbert_elliott=GilbertElliottParams(0.1, 0.5)
        ).is_null


class TestRandomFaultSchedule:
    NODES = [3, 4, 5, 6, 7, 8]
    LINKS = [Link(0, 1, 1.0), Link(1, 2, 1.0), Link(2, 3, 1.0)]

    def test_zero_intensity_is_null(self):
        schedule = random_fault_schedule(
            0.0, _rng(), self.NODES, self.LINKS, horizon=100.0
        )
        assert schedule.is_null

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            random_fault_schedule(1.5, _rng(), self.NODES, self.LINKS, 100.0)
        with pytest.raises(ValueError):
            random_fault_schedule(0.5, _rng(), self.NODES, self.LINKS, 0.0)

    def test_deterministic_per_rng_seed(self):
        a = random_fault_schedule(0.7, _rng(42), self.NODES, self.LINKS, 100.0)
        b = random_fault_schedule(0.7, _rng(42), self.NODES, self.LINKS, 100.0)
        assert a == b
        c = random_fault_schedule(0.7, _rng(43), self.NODES, self.LINKS, 100.0)
        assert a != c

    def test_windows_are_finite_and_scale_with_intensity(self):
        schedule = random_fault_schedule(
            1.0, _rng(7), self.NODES, self.LINKS, horizon=100.0
        )
        assert schedule.crash_windows  # intensity 1 crashes ~half the nodes
        for window in schedule.crash_windows:
            assert window.node in self.NODES
            assert 0.0 <= window.start <= window.end
            assert window.end < 100.0 * (0.6 + 0.3) + 1e-9
        assert schedule.gilbert_elliott is not None
        assert schedule.request_blackhole_prob > 0.0


class TestFaultInjector:
    def _packet(self, kind=PacketKind.REQUEST, seq=0):
        return Packet(kind, seq, origin=3)

    def test_crash_window_drops_both_directions(self):
        schedule = FaultSchedule(crash_windows=(CrashWindow(3, 10.0, 20.0),))
        injector = FaultInjector(schedule, _rng())
        packet = self._packet()
        assert not injector.drop_delivery(3, packet, 9.9)
        assert injector.drop_delivery(3, packet, 10.0)
        assert injector.suppress_send(3, packet, 15.0)
        assert not injector.drop_delivery(3, packet, 20.0)  # half-open
        assert not injector.drop_delivery(4, packet, 15.0)  # other node fine
        assert injector.counts == {"crash.rx_drop": 1, "crash.tx_drop": 1}

    def test_link_down_is_undirected(self):
        schedule = FaultSchedule(
            link_down_windows=(LinkDownWindow(2, 1, 5.0, 6.0),)
        )
        injector = FaultInjector(schedule, _rng())
        link = Link(1, 2, 1.0)
        assert injector.link_down(link, 5.5)
        assert not injector.link_down(link, 6.5)
        assert not injector.link_down(Link(1, 3, 1.0), 5.5)
        assert injector.counts["link.down_drop"] == 1

    def test_gilbert_elliott_chain_enters_bad_state(self):
        # p_enter=1: after the first draw the link is pinned bad, where
        # loss is certain; the first draw itself uses the good state.
        params = GilbertElliottParams(
            p_enter_bad=1.0, p_exit_bad=0.0, bad_loss=1.0, good_loss=0.0
        )
        schedule = FaultSchedule(gilbert_elliott=params)
        injector = FaultInjector(schedule, _rng())
        assert injector.burst_loss
        link = Link(0, 1, 1.0)
        assert not injector.burst_loss_draw(link, 0.0)  # good state, loss 0
        assert injector.burst_loss_draw(link, 1.0)  # bad state, loss 1
        assert injector.burst_loss_draw(link, 2.0)
        assert injector.counts["burst.drop"] == 2

    def test_gilbert_elliott_good_state_uses_link_loss(self):
        params = GilbertElliottParams(
            p_enter_bad=0.0, p_exit_bad=0.0, bad_loss=1.0, good_loss=None
        )
        injector = FaultInjector(
            FaultSchedule(gilbert_elliott=params), _rng()
        )
        lossless = Link(0, 1, 1.0, loss_prob=0.0)
        # loss_prob must stay below 1; 0.999 with the seeded rng's first
        # draw (~0.64) makes the outcome deterministic anyway.
        lossy = Link(0, 2, 1.0, loss_prob=0.999)
        assert not injector.burst_loss_draw(lossless, 0.0)
        assert injector.burst_loss_draw(lossy, 0.0)

    def test_blackhole_eats_recovery_unicast_only(self):
        schedule = FaultSchedule(
            request_blackhole_prob=1.0, repair_blackhole_prob=1.0
        )
        injector = FaultInjector(schedule, _rng())
        assert injector.blackhole(self._packet(PacketKind.REQUEST), 0.0)
        assert injector.blackhole(self._packet(PacketKind.REPAIR), 0.0)
        assert not injector.blackhole(self._packet(PacketKind.DATA), 0.0)
        assert not injector.blackhole(self._packet(PacketKind.SESSION), 0.0)
        assert injector.counts["blackhole.request"] == 1
        assert injector.counts["blackhole.repair"] == 1

    def test_null_schedule_injects_nothing(self):
        injector = FaultInjector(FaultSchedule.none(), _rng())
        packet = self._packet()
        assert not injector.drop_delivery(3, packet, 1.0)
        assert not injector.suppress_send(3, packet, 1.0)
        assert not injector.link_down(Link(0, 1, 1.0), 1.0)
        assert not injector.burst_loss
        assert not injector.blackhole(packet, 1.0)
        assert injector.counts == {}


class TestLiveness:
    def test_report_ok(self):
        report = LivenessReport(unterminated=(), recovered=3, abandoned=1)
        assert report.ok
        assert report.violations == 0

    def test_checker_flags_unterminated(self):
        from repro.metrics.collectors import RecoveryLog

        log = RecoveryLog()
        log.loss_detected(3, 0, 1.0)
        log.loss_detected(3, 1, 1.0)
        log.loss_detected(4, 0, 1.0)
        log.recovered(3, 0, 2.0)
        log.abandoned(3, 1, 3.0)
        checker = RecoveryLivenessChecker()
        report = checker.check(log)
        assert report.unterminated == ((4, 0),)
        assert report.recovered == 1
        assert report.abandoned == 1
        with pytest.raises(LivenessError) as excinfo:
            checker.assert_terminated(log)
        assert "(4, 0)" in str(excinfo.value)
        assert excinfo.value.report.violations == 1

    def test_checker_passes_when_all_terminated(self):
        from repro.metrics.collectors import RecoveryLog

        log = RecoveryLog()
        log.loss_detected(3, 0, 1.0)
        log.abandoned(3, 0, 2.0)
        report = RecoveryLivenessChecker().assert_terminated(log)
        assert report.ok


class TestZeroLengthWindowRegression:
    """random_fault_schedule must never emit a degenerate [t, t) window
    (it would never fire yet still count as an injected fault), and the
    filter must consume the same RNG draws as the unfiltered path so
    every later window is unchanged."""

    class _ScriptedRng:
        """Stands in for a Generator: scripted uniform draws, identity
        choice picks."""

        def __init__(self, uniforms):
            self._uniforms = list(uniforms)

        def choice(self, n, size, replace):
            assert not replace
            return np.arange(size)

        def uniform(self, lo, hi):
            return self._uniforms.pop(0)

    def test_degenerate_window_skipped_draws_preserved(self):
        # First pick: start so large that start + length == start in
        # float arithmetic (the degenerate case).  Second pick: normal.
        horizon = 1.0
        rng = self._ScriptedRng(uniforms=[
            1e18, 0.05,   # pick 1: 1e18 + 0.05 == 1e18 -> skipped
            0.10, 0.06,   # pick 2: [0.10, 0.16) -> kept
        ])
        schedule = random_fault_schedule(
            1.0, rng, nodes=[7, 8, 9, 10], links=[], horizon=horizon
        )
        assert len(schedule.crash_windows) == 1
        window = schedule.crash_windows[0]
        # The second *pick* got the second *pair* of draws: the filter
        # consumed both draws of the degenerate pick before skipping.
        assert window.node == 8
        assert window.start == pytest.approx(0.10)
        assert window.end == pytest.approx(0.16)
        assert not rng._uniforms  # every scripted draw was consumed

    def test_sampled_windows_always_positive_length(self):
        for seed in range(10):
            schedule = random_fault_schedule(
                0.9, _rng(seed), nodes=list(range(20)),
                links=[], horizon=280.0,
            )
            for window in schedule.crash_windows:
                assert window.end > window.start
