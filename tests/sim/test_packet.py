"""Tests for packet records."""

import pytest

from repro.sim.packet import Packet, PacketKind


class TestPacket:
    def test_recovery_traffic_classification(self):
        assert Packet(PacketKind.REQUEST, 0, origin=1).is_recovery_traffic
        assert Packet(PacketKind.NACK, 0, origin=1).is_recovery_traffic
        assert Packet(PacketKind.REPAIR, 0, origin=1).is_recovery_traffic
        assert not Packet(PacketKind.DATA, 0, origin=1).is_recovery_traffic
        assert not Packet(
            PacketKind.SESSION, 0, origin=1, highest_seq=5
        ).is_recovery_traffic

    def test_non_session_needs_seq(self):
        with pytest.raises(ValueError):
            Packet(PacketKind.DATA, -1, origin=1)
        with pytest.raises(ValueError):
            Packet(PacketKind.REQUEST, -3, origin=1)

    def test_session_may_omit_seq(self):
        packet = Packet(PacketKind.SESSION, -1, origin=1, highest_seq=9)
        assert packet.highest_seq == 9

    def test_immutable(self):
        packet = Packet(PacketKind.DATA, 0, origin=1)
        with pytest.raises(AttributeError):
            packet.seq = 5  # type: ignore[misc]

    def test_defaults(self):
        packet = Packet(PacketKind.DATA, 0, origin=1)
        assert packet.req_id == -1
        assert packet.chain_index == 0
        assert packet.highest_seq == -1
