"""Tests for the dynamic-membership subsystem (schedules + director)."""

import numpy as np
import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario, run_protocol_detailed
from repro.protocols.rp import RPProtocolFactory
from repro.protocols.srm import SRMConfig, SRMProtocolFactory
from repro.sim.membership import (
    JOIN,
    LEAVE,
    MembershipEvent,
    MembershipSchedule,
    random_membership_schedule,
)

CONFIG = ScenarioConfig(
    seed=11, num_routers=30, loss_prob=0.08, num_packets=8,
    lossless_recovery=False,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestScheduleValidation:
    def test_event_rejects_negative_time(self):
        with pytest.raises(ValueError):
            MembershipEvent(time=-1.0, node=3, kind=LEAVE)

    def test_event_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MembershipEvent(time=1.0, node=3, kind="crash")

    def test_events_must_be_sorted(self):
        with pytest.raises(ValueError):
            MembershipSchedule(events=(
                MembershipEvent(time=5.0, node=1, kind=LEAVE),
                MembershipEvent(time=2.0, node=2, kind=LEAVE),
            ))

    def test_first_event_per_node_must_be_leave(self):
        # The initial group is the tree's client set: a member cannot
        # join before it has left.
        with pytest.raises(ValueError):
            MembershipSchedule(events=(
                MembershipEvent(time=1.0, node=1, kind=JOIN),
            ))

    def test_events_must_alternate_per_node(self):
        with pytest.raises(ValueError):
            MembershipSchedule(events=(
                MembershipEvent(time=1.0, node=1, kind=LEAVE),
                MembershipEvent(time=2.0, node=1, kind=LEAVE),
            ))

    def test_valid_round_trip_accepted(self):
        schedule = MembershipSchedule(events=(
            MembershipEvent(time=1.0, node=1, kind=LEAVE),
            MembershipEvent(time=2.0, node=2, kind=LEAVE),
            MembershipEvent(time=3.0, node=1, kind=JOIN),
            MembershipEvent(time=4.0, node=1, kind=LEAVE),
        ))
        assert schedule.churners == (1, 2)
        assert not schedule.is_null

    def test_null_schedule(self):
        assert MembershipSchedule.none().is_null
        assert MembershipSchedule().is_null
        assert MembershipSchedule.none().churners == ()


class TestRandomSchedule:
    def test_zero_intensity_is_null_and_draws_nothing(self):
        rng = _rng(7)
        before = rng.bit_generator.state
        schedule = random_membership_schedule(0.0, rng, [1, 2, 3], 100.0)
        assert schedule.is_null
        assert rng.bit_generator.state == before

    def test_deterministic_per_seed(self):
        clients = list(range(10, 40))
        a = random_membership_schedule(0.6, _rng(42), clients, 200.0)
        b = random_membership_schedule(0.6, _rng(42), clients, 200.0)
        assert a == b

    def test_events_valid_and_within_horizon(self):
        horizon = 250.0
        clients = list(range(5, 45))
        for seed in range(8):
            schedule = random_membership_schedule(
                0.8, _rng(seed), clients, horizon
            )
            # Constructing the schedule already validated ordering and
            # per-node alternation; check the placement contract.
            assert set(schedule.churners) <= set(clients)
            for event in schedule.events:
                if event.kind == LEAVE:
                    assert event.time < 0.7 * horizon
                else:
                    assert event.time < 0.85 * horizon

    def test_intensity_scales_churner_count(self):
        clients = list(range(100))
        light = random_membership_schedule(0.2, _rng(1), clients, 300.0)
        heavy = random_membership_schedule(1.0, _rng(1), clients, 300.0)
        assert len(heavy.churners) > len(light.churners) > 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            random_membership_schedule(1.5, _rng(), [1], 100.0)
        with pytest.raises(ValueError):
            random_membership_schedule(0.5, _rng(), [1], 0.0)


def _leaf_client(built):
    return next(
        c for c in built.tree.clients
        if c != built.tree.root and built.tree.is_leaf(c)
    )


class TestDirectorIntegration:
    def test_permanent_leave_settles_and_prunes(self):
        built = build_scenario(CONFIG)
        leaver = _leaf_client(built)
        schedule = MembershipSchedule(events=(
            MembershipEvent(time=40.0, node=leaver, kind=LEAVE),
        ))
        artifacts = run_protocol_detailed(
            built, RPProtocolFactory(), membership=schedule
        )
        director = artifacts.membership
        assert director is not None
        assert director.counts.get("member.leave") == 1
        assert "member.join" not in director.counts
        # Teardown beat every armed send: nothing reached the boundary.
        assert director.counts.get("member.tx_drop", 0) == 0
        assert leaver in director.departed
        assert leaver not in director.members()
        # The leaf was pruned from the run's tree...
        assert not director._network.tree.contains(leaver)
        # ...while the shared built tree stayed pristine.
        assert built.tree.contains(leaver)
        # The run terminated cleanly despite the missing member.
        assert artifacts.liveness is not None
        assert artifacts.liveness.ok
        assert artifacts.liveness.pending_timers == 0

    def test_leave_then_rejoin_catches_up(self):
        built = build_scenario(CONFIG)
        churner = _leaf_client(built)
        schedule = MembershipSchedule(events=(
            MembershipEvent(time=30.0, node=churner, kind=LEAVE),
            MembershipEvent(time=90.0, node=churner, kind=JOIN),
        ))
        artifacts = run_protocol_detailed(
            built, SRMProtocolFactory(SRMConfig(max_request_rounds=8)),
            membership=schedule,
        )
        director = artifacts.membership
        assert director is not None
        assert director.counts.get("member.leave") == 1
        assert director.counts.get("member.join") == 1
        assert director.departed == frozenset()
        assert churner in director.members()
        assert director._network.tree.contains(churner)
        agent = director._network.agent_at(churner)
        assert agent is not None and not agent.departed
        # The rejoiner caught up: every packet slot settled explicitly
        # (a late repair may still land for an abandoned seq, so the
        # two sets can overlap — coverage is what matters).
        assert (
            len(agent.received | agent.abandoned_seqs) == CONFIG.num_packets
        )
        assert artifacts.liveness is not None
        assert artifacts.liveness.ok

    def test_root_never_leaves(self):
        built = build_scenario(CONFIG)
        schedule = MembershipSchedule(events=(
            MembershipEvent(time=40.0, node=built.tree.root, kind=LEAVE),
        ))
        artifacts = run_protocol_detailed(
            built, RPProtocolFactory(), membership=schedule
        )
        director = artifacts.membership
        assert director is not None
        # The leave fired but was refused: the source anchors the group.
        assert director.departed == frozenset()
        assert "member.leave" not in director.counts

    def test_plan_repair_emitted_for_planning_protocol(self):
        built = build_scenario(CONFIG)
        leaver = _leaf_client(built)
        schedule = MembershipSchedule(events=(
            MembershipEvent(time=40.0, node=leaver, kind=LEAVE),
        ))
        factory = RPProtocolFactory()
        run_protocol_detailed(built, factory, membership=schedule)
        repairer = factory.last_repairer
        assert repairer is not None
        assert len(repairer.history) == 1
        assert repairer.history[0]["kind"] == LEAVE
        # The leaver's own plan was retired with it.
        assert leaver not in repairer.strategies
        # No surviving plan names the departed peer.
        for strategy in repairer.strategies.values():
            assert leaver not in [a.node for a in strategy.attempts]
