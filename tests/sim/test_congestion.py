"""Tests for load-dependent link delays."""

import numpy as np
import pytest

from repro.net.routing import RoutingTable
from repro.sim.congestion import LinearCongestionModel
from repro.sim.network import SimNetwork
from repro.sim.packet import Packet, PacketKind

from tests.sim.test_network import CA, CB, S, Recorder, build_net


class TestModel:
    def test_begin_end_bookkeeping(self):
        model = LinearCongestionModel(0.5)
        key = (0, 1)
        assert model.begin(key) == 0
        assert model.begin(key) == 1
        assert model.in_flight(key) == 2
        model.end(key)
        assert model.in_flight(key) == 1
        model.end(key)
        assert model.in_flight(key) == 0

    def test_end_without_begin_raises(self):
        model = LinearCongestionModel()
        with pytest.raises(ValueError):
            model.end((0, 1))

    def test_effective_delay(self):
        model = LinearCongestionModel(0.25)
        assert model.effective_delay(8.0, 0) == 8.0
        assert model.effective_delay(8.0, 2) == pytest.approx(12.0)

    def test_alpha_zero_is_load_independent(self):
        model = LinearCongestionModel(0.0)
        assert model.effective_delay(8.0, 100) == 8.0

    def test_peak_occupancy(self):
        model = LinearCongestionModel()
        key = (3, 4)
        model.begin(key)
        model.begin(key)
        model.end(key)
        assert model.peak_occupancy() == 2

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LinearCongestionModel(-0.1)


class TestNetworkIntegration:
    def _net_with_congestion(self, alpha):
        topo, tree, events, _ = build_net()
        model = LinearCongestionModel(alpha)
        net = SimNetwork(
            events, topo, RoutingTable(topo), tree,
            loss_rng=np.random.default_rng(0), congestion=model,
        )
        return topo, events, net, model

    def test_single_packet_unaffected(self):
        _, events, net, _ = self._net_with_congestion(1.0)
        rec = Recorder(events)
        net.attach_agent(CA, rec)
        net.send_unicast(S, CA, Packet(PacketKind.REQUEST, 0, origin=S))
        events.run()
        assert rec.deliveries[0][0] == pytest.approx(4.0)

    def test_concurrent_packets_slow_each_other(self):
        _, events, net, _ = self._net_with_congestion(1.0)
        rec = Recorder(events)
        net.attach_agent(CA, rec)
        # Two packets on the same path at the same instant: the second
        # finds the first in flight on S->r0 and is slowed.
        net.send_unicast(S, CA, Packet(PacketKind.REQUEST, 0, origin=S))
        net.send_unicast(S, CA, Packet(PacketKind.REQUEST, 1, origin=S))
        events.run()
        times = sorted(t for t, _ in rec.deliveries)
        assert times[0] == pytest.approx(4.0)
        assert times[1] > 4.0

    def test_occupancy_returns_to_zero(self):
        _, events, net, model = self._net_with_congestion(0.5)
        net.attach_agent(CA, Recorder(events))
        for seq in range(5):
            net.multicast_subtree(S, S, Packet(PacketKind.DATA, seq, origin=S))
        events.run()
        assert model.peak_occupancy() >= 1
        # All packets arrived or were dropped: links are empty again.
        assert all(
            model.in_flight((l.u, l.v)) == 0 for l in net.topology.links
        )

    def test_end_to_end_run_with_congestion(self):
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import build_scenario, run_protocol
        from repro.protocols.rp import RPProtocolFactory

        config = ScenarioConfig(
            seed=23, num_routers=25, loss_prob=0.05, num_packets=8,
            congestion_alpha=0.2, max_events=5_000_000,
        )
        built = build_scenario(config)
        summary = run_protocol(built, RPProtocolFactory())
        assert summary.fully_recovered
