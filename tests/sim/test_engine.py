"""Tests for the event calendar: ordering, determinism, cancellation."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import COMPACT_MIN_DEAD, EventQueue


class TestScheduling:
    def test_events_fire_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(3.0, lambda: fired.append("c"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(2.0, lambda: fired.append("b"))
        q.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_fifo(self):
        q = EventQueue()
        fired = []
        for label in "abcde":
            q.schedule(5.0, lambda label=label: fired.append(label))
        q.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        q = EventQueue()
        seen = []
        q.schedule(4.5, lambda: seen.append(q.now))
        q.run()
        assert seen == [4.5]
        assert q.now == 4.5

    def test_nested_scheduling(self):
        q = EventQueue()
        fired = []

        def outer():
            fired.append(("outer", q.now))
            q.schedule(2.0, lambda: fired.append(("inner", q.now)))

        q.schedule(1.0, outer)
        q.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]

    def test_rejects_negative_delay(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-1.0, lambda: None)

    def test_rejects_scheduling_into_past(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule_at(3.0, lambda: None)

    def test_schedule_at_now_is_allowed(self):
        q = EventQueue()
        fired = []
        q.schedule(0.0, lambda: fired.append(q.now))
        q.run()
        assert fired == [0.0]


class TestCancellation:
    def test_cancelled_timer_does_not_fire(self):
        q = EventQueue()
        fired = []
        timer = q.schedule(1.0, lambda: fired.append("x"))
        timer.cancel()
        q.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        timer = q.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        assert not timer.active

    def test_cancel_from_within_event(self):
        q = EventQueue()
        fired = []
        late = q.schedule(2.0, lambda: fired.append("late"))
        q.schedule(1.0, late.cancel)
        q.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        q = EventQueue()
        t1 = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        t1.cancel()
        assert q.pending == 1

    def test_processed_counts_fired_only(self):
        q = EventQueue()
        t = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        t.cancel()
        q.run()
        assert q.processed == 1


class TestRunControls:
    def test_until_stops_and_advances_clock(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(10.0, lambda: fired.append(10))
        q.run(until=5.0)
        assert fired == [1]
        assert q.now == 5.0
        q.run()
        assert fired == [1, 10]

    def test_until_with_empty_queue_advances_clock(self):
        q = EventQueue()
        q.run(until=7.0)
        assert q.now == 7.0

    def test_max_events_raises(self):
        q = EventQueue()

        def rearm():
            q.schedule(1.0, rearm)

        q.schedule(1.0, rearm)
        with pytest.raises(RuntimeError):
            q.run(max_events=100)

    def test_max_events_budget_is_exact(self):
        # Regression: the old guard (`executed > max_events`) let
        # max_events + 1 events run before raising.
        q = EventQueue()
        fired = []
        for i in range(10):
            q.schedule(float(i + 1), lambda i=i: fired.append(i))
        with pytest.raises(RuntimeError):
            q.run(max_events=4)
        assert fired == [0, 1, 2, 3]
        assert q.processed == 4

    def test_max_events_exactly_enough_completes(self):
        # A queue holding exactly max_events events must drain cleanly.
        q = EventQueue()
        fired = []
        for i in range(5):
            q.schedule(float(i + 1), lambda i=i: fired.append(i))
        q.run(max_events=5)
        assert fired == [0, 1, 2, 3, 4]
        assert q.processed == 5

    def test_stop_when_halts_early(self):
        q = EventQueue()
        fired = []
        for i in range(10):
            q.schedule(float(i + 1), lambda i=i: fired.append(i))
        q.run(stop_when=lambda: len(fired) >= 3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        q = EventQueue()
        assert not q.step()
        q.schedule(1.0, lambda: None)
        assert q.step()
        assert not q.step()

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=60))
    def test_property_fire_times_sorted(self, delays):
        q = EventQueue()
        times = []
        for d in delays:
            q.schedule(d, lambda: times.append(q.now))
        q.run()
        assert times == sorted(times)
        assert len(times) == len(delays)


class TestCompaction:
    """Lazy cancelled-timer compaction: the heap must stay bounded under
    heavy cancel/rearm workloads (SRM suppression, RP repair races)."""

    def test_cancelled_pending_counter(self):
        q = EventQueue()
        timers = [q.schedule(float(i + 1), lambda: None) for i in range(10)]
        for t in timers[:4]:
            t.cancel()
        assert q.cancelled_pending == 4
        assert q.pending == 6

    def test_pending_is_consistent_after_compaction(self):
        q = EventQueue()
        live = [q.schedule(1000.0 + i, lambda: None) for i in range(10)]
        dead = [q.schedule(float(i + 1), lambda: None) for i in range(500)]
        for t in dead:
            t.cancel()
        assert q.compactions >= 1
        # Residual dead weight stays below the compaction floor.
        assert q.cancelled_pending < COMPACT_MIN_DEAD
        assert q.pending == len(live)

    def test_heap_bounded_under_cancel_rearm(self):
        # The regression: before compaction, N cancel/rearm cycles left
        # N dead timers in the heap. Now the heap stays O(live).
        q = EventQueue()
        timer = q.schedule(1.0, lambda: None)
        for i in range(10_000):
            timer.cancel()
            timer = q.schedule(float(i + 2), lambda: None)
        assert len(q._heap) < 200
        assert q.pending == 1

    def test_compaction_preserves_replay_order(self):
        fired_plain = []
        q1 = EventQueue()
        for i in range(300):
            q1.schedule(float(i % 7), lambda i=i: fired_plain.append(i))
        q1.run()

        fired_churn = []
        q2 = EventQueue()
        # Same schedule, but interleave enough cancelled timers to force
        # at least one compaction before anything fires.
        doomed = [q2.schedule(50.0 + i, lambda: None) for i in range(400)]
        for i in range(300):
            q2.schedule(float(i % 7), lambda i=i: fired_churn.append(i))
        for t in doomed:
            t.cancel()
        assert q2.compactions >= 1
        q2.run()
        assert fired_churn == fired_plain

    def test_cancel_after_fire_does_not_skew_count(self):
        q = EventQueue()
        t = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        q.run()
        t.cancel()  # late cancel of an already-fired timer
        assert q.cancelled_pending == 0
        assert q.pending == 0

    def test_drain_leaves_no_dead_weight(self):
        q = EventQueue()
        for i in range(100):
            t = q.schedule(float(i + 1), lambda: None)
            if i % 2:
                t.cancel()
        q.run()
        assert q.cancelled_pending == 0
        assert len(q._heap) == 0
        assert q.processed == 50
