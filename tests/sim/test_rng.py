"""Tests for named random streams."""

from repro.sim.rng import RngStreams, _stable_key


class TestRngStreams:
    def test_same_seed_same_name_same_sequence(self):
        a = RngStreams(5).get("loss")
        b = RngStreams(5).get("loss")
        assert list(a.random(10)) == list(b.random(10))

    def test_different_names_independent(self):
        streams = RngStreams(5)
        a = streams.get("loss")
        b = streams.get("timers")
        assert list(a.random(10)) != list(b.random(10))

    def test_different_seeds_differ(self):
        a = RngStreams(5).get("loss")
        b = RngStreams(6).get("loss")
        assert list(a.random(10)) != list(b.random(10))

    def test_get_returns_same_object(self):
        streams = RngStreams(1)
        assert streams.get("x") is streams.get("x")

    def test_getitem_alias(self):
        streams = RngStreams(1)
        assert streams["x"] is streams.get("x")

    def test_consumption_does_not_affect_other_streams(self):
        """Drawing extra numbers from one stream leaves another stream's
        future identical — the pairing property the runner relies on."""
        s1 = RngStreams(9)
        s1.get("a").random(100)  # consume heavily
        tail1 = list(s1.get("b").random(5))
        s2 = RngStreams(9)
        tail2 = list(s2.get("b").random(5))
        assert tail1 == tail2

    def test_seed_property(self):
        assert RngStreams(77).seed == 77


class TestStableKey:
    def test_deterministic(self):
        assert _stable_key("loss") == _stable_key("loss")

    def test_distinct_for_distinct_names(self):
        names = ["loss", "timers", "topology", "tree", "loss:data", "srm-timers"]
        keys = {_stable_key(n) for n in names}
        assert len(keys) == len(names)

    def test_fits_in_64_bits(self):
        assert 0 <= _stable_key("anything at all") < 2**64


class TestChunkedDrawIdentity:
    """The array dissemination fast path replaces ``k`` successive
    ``rng.random()`` calls with one ``rng.random(k)``.  Its bit-identity
    contract stands on these two facts about numpy's Generator; if a
    numpy upgrade ever breaks them, this is the test that must fail."""

    def test_chunked_equals_successive_scalars(self):
        for size in (1, 2, 7, 64, 1000):
            chunked = RngStreams(123).get("loss").random(size)
            scalar_rng = RngStreams(123).get("loss")
            scalars = [scalar_rng.random() for _ in range(size)]
            assert list(chunked) == scalars

    def test_stream_position_after_chunk_matches(self):
        a = RngStreams(9).get("loss")
        b = RngStreams(9).get("loss")
        a.random(17)
        for _ in range(17):
            b.random()
        assert a.random() == b.random()
