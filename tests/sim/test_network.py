"""Tests for the packet-level network: forwarding, delays, loss,
multicast, flooding, hop accounting."""

import numpy as np
import pytest

from repro.metrics.collectors import BandwidthLedger
from repro.net.mcast_tree import MulticastTree
from repro.net.routing import RoutingTable
from repro.net.topology import NodeKind, Topology
from repro.sim.engine import EventQueue
from repro.sim.network import SimNetwork
from repro.sim.packet import Packet, PacketKind


class Recorder:
    """Agent that records (time, packet) deliveries."""

    def __init__(self, events: EventQueue):
        self.events = events
        self.deliveries: list[tuple[float, Packet]] = []

    def on_packet(self, packet: Packet) -> None:
        self.deliveries.append((self.events.now, packet))


# Node ids in build_net: r0=0, r1=1, S=2, cA=3 (at r0), cB=4 (at r1).
S, CA, CB = 2, 3, 4


def build_net(loss_prob=0.0, seed=0):
    """S - r0 - r1 with clients cA (at r0) and cB (at r1).

    Extra non-tree shortcut link cA-cB for unicast routing tests.
    Link delays: S-r0: 1, r0-r1: 2, r0-cA: 3, r1-cB: 4, cA-cB: 1.
    """
    topo = Topology()
    r0, r1 = topo.add_nodes(2, NodeKind.ROUTER)
    s = topo.add_node(NodeKind.SOURCE)
    ca = topo.add_node(NodeKind.CLIENT)
    cb = topo.add_node(NodeKind.CLIENT)
    topo.add_link(s, r0, 1.0, loss_prob)
    topo.add_link(r0, r1, 2.0, loss_prob)
    topo.add_link(r0, ca, 3.0, loss_prob)
    topo.add_link(r1, cb, 4.0, loss_prob)
    topo.add_link(ca, cb, 1.0, loss_prob)  # shortcut, not in tree
    tree = MulticastTree(topo, s, {r0: s, r1: r0, ca: r0, cb: r1})
    events = EventQueue()
    net = SimNetwork(
        events,
        topo,
        RoutingTable(topo),
        tree,
        loss_rng=np.random.default_rng(seed),
        ledger=BandwidthLedger(),
    )
    return topo, tree, events, net


DATA0 = Packet(PacketKind.DATA, 0, origin=S)
REQ = Packet(PacketKind.REQUEST, 0, origin=CA)


class TestUnicast:
    def test_delivery_time_is_path_delay(self):
        _, _, events, net = build_net()
        rec = Recorder(events)
        net.attach_agent(CA, rec)
        net.send_unicast(S, CA, REQ)  # S -> r0 -> cA: 1 + 3
        events.run()
        assert rec.deliveries == [(4.0, REQ)]

    def test_uses_shortest_path_not_tree(self):
        _, _, events, net = build_net()
        rec = Recorder(events)
        net.attach_agent(CB, rec)
        net.send_unicast(CA, CB, REQ)  # shortcut cA-cB: delay 1
        events.run()
        assert rec.deliveries == [(1.0, REQ)]

    def test_self_delivery(self):
        _, _, events, net = build_net()
        rec = Recorder(events)
        net.attach_agent(CA, rec)
        net.send_unicast(CA, CA, REQ)
        events.run()
        assert rec.deliveries == [(0.0, REQ)]
        assert net.ledger.recovery_hops == 0

    def test_intermediate_nodes_not_delivered(self):
        _, _, events, net = build_net()
        mid = Recorder(events)
        dst = Recorder(events)
        net.attach_agent(0, mid)
        net.attach_agent(CA, dst)
        net.send_unicast(S, CA, REQ)
        events.run()
        assert mid.deliveries == []
        assert len(dst.deliveries) == 1

    def test_hops_charged_per_link(self):
        _, _, events, net = build_net()
        net.attach_agent(CA, Recorder(events))
        net.send_unicast(S, CA, REQ)
        events.run()
        assert net.ledger.hops_by_kind[PacketKind.REQUEST] == 2

    def test_total_loss_drops_packet_but_charges_first_hop(self):
        _, _, events, net = build_net(loss_prob=0.999999, seed=1)
        rec = Recorder(events)
        net.attach_agent(CA, rec)
        net.send_unicast(S, CA, REQ)
        events.run()
        assert rec.deliveries == []
        assert net.ledger.hops_by_kind[PacketKind.REQUEST] == 1
        assert net.ledger.drops_by_kind[PacketKind.REQUEST] == 1


class TestMulticastSubtree:
    def test_full_tree_multicast_reaches_all_members(self):
        _, _, events, net = build_net()
        recs = {n: Recorder(events) for n in (CA, CB)}
        for n, r in recs.items():
            net.attach_agent(n, r)
        net.multicast_subtree(S, S, DATA0)
        events.run()
        # cA: S->r0->cA = 1+3 = 4; cB: 1+2+4 = 7.
        assert recs[CA].deliveries[0][0] == pytest.approx(4.0)
        assert recs[CB].deliveries[0][0] == pytest.approx(7.0)

    def test_hop_count_equals_tree_links(self):
        _, tree, events, net = build_net()
        net.multicast_subtree(S, S, DATA0)
        events.run()
        assert net.ledger.data_hops == tree.num_tree_links

    def test_subtree_multicast_covers_only_subtree(self):
        _, _, events, net = build_net()
        recs = {n: Recorder(events) for n in (CA, CB)}
        for n, r in recs.items():
            net.attach_agent(n, r)
        repair = Packet(PacketKind.REPAIR, 0, origin=S)
        net.multicast_subtree(S, 1, repair)  # subtree rooted at r1
        events.run()
        assert recs[CA].deliveries == []
        assert [t for t, _ in recs[CB].deliveries] == [pytest.approx(7.0)]

    def test_access_leg_then_subtree(self):
        """A repair travelling up to the subtree root and down again."""
        _, _, events, net = build_net()
        rec = Recorder(events)
        net.attach_agent(CB, rec)
        repair = Packet(PacketKind.REPAIR, 0, origin=CA)
        # cA repairs into subtree r1: tree path cA -> r0 -> r1, then down.
        net.multicast_subtree(CA, 1, repair)
        events.run()
        assert [t for t, _ in rec.deliveries] == [pytest.approx(3 + 2 + 4)]

    def test_originator_not_self_delivered(self):
        _, _, events, net = build_net()
        rec = Recorder(events)
        net.attach_agent(CA, rec)
        repair = Packet(PacketKind.REPAIR, 0, origin=CA)
        # cA lies inside r0's subtree, so the downward copy returns to
        # it — exactly once; it must not hear its own upward leg.
        net.multicast_subtree(CA, 0, repair)
        events.run()
        assert len(rec.deliveries) == 1

    def test_loss_on_tree_link_prunes_subtree(self):
        _, _, events, net = build_net(loss_prob=0.999999, seed=3)
        recs = {n: Recorder(events) for n in (CA, CB)}
        for n, r in recs.items():
            net.attach_agent(n, r)
        net.multicast_subtree(S, S, DATA0)
        events.run()
        assert recs[CA].deliveries == []
        assert recs[CB].deliveries == []
        # Only the first link was attempted (S->r0 dropped).
        assert net.ledger.data_hops == 1

    def test_non_member_endpoints_rejected(self):
        topo, _, events, net = build_net()
        outsider = topo.add_node(NodeKind.ROUTER)
        with pytest.raises(ValueError):
            net.multicast_subtree(outsider, 0, DATA0)
        with pytest.raises(ValueError):
            net.multicast_subtree(S, outsider, DATA0)


class TestFlood:
    def test_flood_reaches_everyone_from_any_member(self):
        _, _, events, net = build_net()
        recs = {n: Recorder(events) for n in (S, CA, CB)}
        for n, r in recs.items():
            net.attach_agent(n, r)
        nack = Packet(PacketKind.NACK, 0, origin=CB)
        net.flood_tree(CB, nack)
        events.run()
        # cB -> r1 (4), r1 -> r0 (+2), r0 -> S (+1) and r0 -> cA (+3).
        assert recs[S].deliveries[0][0] == pytest.approx(7.0)
        assert recs[CA].deliveries[0][0] == pytest.approx(9.0)
        assert recs[CB].deliveries == []  # no self-delivery

    def test_flood_hop_count_covers_all_tree_links(self):
        _, tree, events, net = build_net()
        net.flood_tree(CB, Packet(PacketKind.NACK, 0, origin=CB))
        events.run()
        assert net.ledger.hops_by_kind[PacketKind.NACK] == tree.num_tree_links

    def test_flood_from_non_member_rejected(self):
        topo, _, events, net = build_net()
        outsider = topo.add_node(NodeKind.ROUTER)
        with pytest.raises(ValueError):
            net.flood_tree(outsider, Packet(PacketKind.NACK, 0, origin=0))


class TestAgentManagement:
    def test_duplicate_agent_rejected(self):
        _, _, events, net = build_net()
        net.attach_agent(CA, Recorder(events))
        with pytest.raises(ValueError):
            net.attach_agent(CA, Recorder(events))

    def test_unknown_node_rejected(self):
        _, _, events, net = build_net()
        with pytest.raises(ValueError):
            net.attach_agent(99, Recorder(events))

    def test_agent_at(self):
        _, _, events, net = build_net()
        rec = Recorder(events)
        net.attach_agent(CA, rec)
        assert net.agent_at(CA) is rec
        assert net.agent_at(0) is None

    def test_inconsistent_components_rejected(self):
        topo, tree, events, _ = build_net()
        other_topo, _, _, _ = build_net()
        with pytest.raises(ValueError):
            SimNetwork(
                events,
                other_topo,
                RoutingTable(topo),
                tree,
                loss_rng=np.random.default_rng(0),
            )


class TestDataLossPairing:
    def test_data_stream_isolated_from_recovery_draws(self):
        """Two networks drawing recovery losses differently still see the
        same DATA loss pattern when sharing a data stream seed."""
        outcomes = []
        for extra_recovery_draws in (0, 57):
            topo, tree, events, _ = build_net(loss_prob=0.3)
            net = SimNetwork(
                events, topo, RoutingTable(topo), tree,
                loss_rng=np.random.default_rng(1),
                data_loss_rng=np.random.default_rng(2),
            )
            rec = Recorder(events)
            net.attach_agent(CB, rec)
            # Perturb the recovery stream.
            for _ in range(extra_recovery_draws):
                net.send_unicast(S, CA, REQ)
            # Then send data packets; their fate must be identical.
            for seq in range(20):
                net.multicast_subtree(S, S, Packet(PacketKind.DATA, seq, origin=S))
            events.run()
            outcomes.append(sorted(p.seq for _, p in rec.deliveries
                                   if p.kind is PacketKind.DATA))
        assert outcomes[0] == outcomes[1]


class TestJitter:
    def test_jitter_requires_rng(self):
        topo, tree, events, _ = build_net()
        with pytest.raises(ValueError):
            SimNetwork(
                events, topo, RoutingTable(topo), tree,
                loss_rng=np.random.default_rng(0), jitter=0.2,
            )

    def test_jitter_bounds_validated(self):
        topo, tree, events, _ = build_net()
        with pytest.raises(ValueError):
            SimNetwork(
                events, topo, RoutingTable(topo), tree,
                loss_rng=np.random.default_rng(0), jitter=1.0,
                jitter_rng=np.random.default_rng(1),
            )

    def test_delivery_time_within_jitter_bounds(self):
        topo, tree, events, _ = build_net()
        net = SimNetwork(
            events, topo, RoutingTable(topo), tree,
            loss_rng=np.random.default_rng(0),
            jitter=0.5, jitter_rng=np.random.default_rng(2),
        )
        rec = Recorder(events)
        net.attach_agent(CA, rec)
        for _ in range(30):
            net.send_unicast(S, CA, REQ)
        events.run()
        # Nominal path delay 4.0; per-hop jitter 50% -> total in [2, 6].
        times = sorted(t for t, _ in rec.deliveries)
        assert all(2.0 - 1e-9 <= t <= 6.0 + 1e-9 for t in times)
        # And it actually varies.
        assert times[-1] - times[0] > 0.1

    def test_zero_jitter_is_deterministic(self):
        _, _, events, net = build_net()
        rec = Recorder(events)
        net.attach_agent(CA, rec)
        net.send_unicast(S, CA, REQ)
        events.run()
        assert rec.deliveries[0][0] == 4.0
