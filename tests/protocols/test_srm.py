"""Tests for the SRM baseline: suppression timers, NACK/repair floods,
backoff, and full recovery."""

import numpy as np
import pytest

from repro.protocols.srm import SRMClientAgent, SRMConfig, SRMProtocolFactory, SRMSourceAgent
from repro.sim.packet import Packet, PacketKind
from repro.sim.rng import RngStreams


def data(seq):
    return Packet(PacketKind.DATA, seq, origin=2)


def install_srm(world, config=None):
    config = config or SRMConfig()
    rng = np.random.default_rng(7)
    agents = {}
    for client in (world.CA, world.CB, world.CC):
        agent = SRMClientAgent(
            client, world.network, world.log, world.tracker,
            world.num_packets, config, rng,
        )
        world.network.attach_agent(client, agent)
        agents[client] = agent
    source = SRMSourceAgent(world.S, world.network, config, rng)
    world.network.attach_agent(world.S, source)
    return agents, source


class TestConfig:
    def test_defaults_valid(self):
        cfg = SRMConfig()
        assert cfg.c1 == 2.0 and cfg.d1 == 1.0

    def test_rejects_negative_constants(self):
        with pytest.raises(ValueError):
            SRMConfig(c1=-1.0)

    def test_rejects_zero_request_window(self):
        with pytest.raises(ValueError):
            SRMConfig(c1=0.0, c2=0.0)

    def test_rejects_negative_backoff(self):
        with pytest.raises(ValueError):
            SRMConfig(max_backoff=-1)


class TestRequestTimers:
    def test_loss_triggers_nack_flood_within_window(self, world):
        agents, source = install_srm(world)
        source.next_seq = 2
        agent = agents[world.CA]
        agent.on_packet(data(1))  # loses 0
        # Request timer in [c1*dS, (c1+c2)*dS]; dS = 3 -> [6, 12].
        world.events.run(until=5.9)
        assert world.ledger.hops_by_kind[PacketKind.NACK] == 0
        world.events.run(until=12.1)
        assert world.ledger.hops_by_kind[PacketKind.NACK] > 0

    def test_hearing_nack_suppresses_own_request(self, world):
        agents, source = install_srm(world)
        source.next_seq = 2
        # Both CA and CB lost 0; CA hears CB's NACK first.
        a, b = agents[world.CA], agents[world.CB]
        a.on_packet(data(1))
        b.on_packet(data(1))
        world.events.run(until=400.0)
        # Exactly one original NACK flood should dominate; with
        # suppression the total NACK floods stay small while both
        # clients recover.
        assert world.log.is_recovered(world.CA, 0)
        assert world.log.is_recovered(world.CB, 0)

    def test_backoff_grows_request_interval(self, world):
        agents, source = install_srm(world)
        agent = agents[world.CA]
        base = agent._request_delay(0)
        assert agent._request_delay(3) > base  # scaled by 2^3 window


class TestRepairTimers:
    def test_member_with_packet_repairs_on_nack(self, world):
        agents, source = install_srm(world)
        source.next_seq = 1
        holder = agents[world.CC]
        holder.on_packet(data(0))
        nack = Packet(PacketKind.NACK, 0, origin=world.CA)
        holder.on_packet(nack)
        world.events.run(until=100.0)
        assert world.ledger.hops_by_kind[PacketKind.REPAIR] > 0

    def test_member_without_packet_does_not_repair(self, world):
        agents, source = install_srm(world)
        holder = agents[world.CC]  # never received anything
        holder.on_packet(Packet(PacketKind.NACK, 0, origin=world.CA))
        world.events.run(until=100.0)
        assert world.ledger.hops_by_kind[PacketKind.REPAIR] == 0

    def test_hearing_repair_suppresses_pending_repair(self, world):
        agents, source = install_srm(world)
        source.next_seq = 1
        holder = agents[world.CC]
        holder.on_packet(data(0))
        holder.on_packet(Packet(PacketKind.NACK, 0, origin=world.CA))
        # A repair from elsewhere arrives before the timer fires.
        holder.on_packet(Packet(PacketKind.REPAIR, 0, origin=world.CB))
        world.events.run(until=100.0)
        assert world.ledger.hops_by_kind[PacketKind.REPAIR] == 0

    def test_source_answers_nacks(self, world):
        agents, source = install_srm(world)
        source.next_seq = 1
        source.on_packet(Packet(PacketKind.NACK, 0, origin=world.CA))
        world.events.run(until=100.0)
        assert world.ledger.hops_by_kind[PacketKind.REPAIR] > 0

    def test_repair_hold_rate_limits(self, world):
        agents, source = install_srm(world)
        source.next_seq = 1
        source.on_packet(Packet(PacketKind.NACK, 0, origin=world.CA))
        world.events.run(until=100.0)
        hops_first = world.ledger.hops_by_kind[PacketKind.REPAIR]
        # Immediate second NACK during hold: no second flood.
        source.on_packet(Packet(PacketKind.NACK, 0, origin=world.CB))
        world.events.run(until=100.5)
        assert world.ledger.hops_by_kind[PacketKind.REPAIR] == hops_first


class TestFactory:
    def test_install(self, world):
        factory = SRMProtocolFactory(SRMConfig(c1=1.0))
        source = factory.install(
            world.network, world.log, world.tracker, RngStreams(3),
            world.num_packets,
        )
        assert isinstance(source, SRMSourceAgent)
        for client in world.tree.clients:
            agent = world.network.agent_at(client)
            assert isinstance(agent, SRMClientAgent)
            assert agent.config.c1 == 1.0


class TestBackoffCap:
    def test_backoff_capped(self, world):
        agents, _ = install_srm(world, SRMConfig(max_backoff=3))
        agent = agents[world.CA]
        capped = agent._request_delay(3)
        beyond = agent._request_delay(50)
        assert beyond <= capped * (1.0 + 1.0)  # same 2^3 window, both draws

    def test_cap_keeps_timers_finite(self, world):
        agents, _ = install_srm(world, SRMConfig(max_backoff=2))
        agent = agents[world.CA]
        assert agent._request_delay(100) < 1e6


class TestSuppressionState:
    def test_request_timer_cancelled_on_recovery(self, world):
        agents, source = install_srm(world)
        source.next_seq = 2
        agent = agents[world.CA]
        agent.on_packet(data(1))  # lost 0: timer armed
        assert 0 in agent._requests
        agent.on_packet(Packet(PacketKind.REPAIR, 0, origin=world.S))
        assert 0 not in agent._requests

    def test_nack_for_unknown_seq_from_holder_arms_repair(self, world):
        agents, _ = install_srm(world)
        holder = agents[world.CC]
        holder.on_packet(data(0))
        holder.on_packet(Packet(PacketKind.NACK, 0, origin=world.CA))
        assert 0 in holder._repair_timers
