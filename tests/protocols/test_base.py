"""Tests for the shared protocol machinery: gap detection, completion
tracking, the stream driver and repair deduplication."""

import pytest

from repro.protocols.base import (
    ClientAgent,
    CompletionTracker,
    RepairDeduper,
    StreamConfig,
    StreamDriver,
)
from repro.protocols.source import SourceRecoverySourceAgent
from repro.sim.packet import Packet, PacketKind


class ProbeClient(ClientAgent):
    """Records hook invocations instead of recovering anything."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.losses: list[tuple[int, float]] = []
        self.recoveries: list[int] = []
        self.new_packets: list[int] = []

    def on_loss_detected(self, seq: int) -> None:
        self.losses.append((seq, self.network.events.now))

    def on_recovered(self, seq: int) -> None:
        self.recoveries.append(seq)

    def on_new_packet(self, seq: int) -> None:
        self.new_packets.append(seq)


def probe(world, node=None):
    agent = ProbeClient(
        node if node is not None else world.CA,
        world.network,
        world.log,
        world.tracker,
        world.num_packets,
    )
    world.network.attach_agent(agent.node, agent)
    return agent


def data(seq):
    return Packet(PacketKind.DATA, seq, origin=2)


def repair(seq):
    return Packet(PacketKind.REPAIR, seq, origin=2)


def session(highest):
    return Packet(PacketKind.SESSION, 0, origin=2, highest_seq=highest)


class TestGapDetection:
    def test_in_order_reception_no_losses(self, world):
        agent = probe(world)
        for seq in range(4):
            agent.on_packet(data(seq))
        assert agent.losses == []
        assert agent.received == {0, 1, 2, 3}

    def test_gap_detected_on_later_arrival(self, world):
        agent = probe(world)
        agent.on_packet(data(0))
        agent.on_packet(data(3))
        assert [seq for seq, _ in agent.losses] == [1, 2]

    def test_gap_detected_once(self, world):
        agent = probe(world)
        agent.on_packet(data(0))
        agent.on_packet(data(2))
        agent.on_packet(data(3))
        assert [seq for seq, _ in agent.losses] == [1]

    def test_session_reveals_tail_loss(self, world):
        agent = probe(world)
        agent.on_packet(data(0))
        agent.on_packet(session(highest=4))
        assert [seq for seq, _ in agent.losses] == [1, 2, 3, 4]

    def test_losing_everything_detected_via_session(self, world):
        agent = probe(world)
        agent.on_packet(session(highest=2))
        assert [seq for seq, _ in agent.losses] == [0, 1, 2]

    def test_repair_fills_gap_and_records_recovery(self, world):
        agent = probe(world)
        agent.on_packet(data(0))
        agent.on_packet(data(2))  # detects loss of 1
        agent.on_packet(repair(1))
        assert agent.recoveries == [1]
        assert world.log.is_recovered(agent.node, 1)

    def test_duplicate_repair_ignored(self, world):
        agent = probe(world)
        agent.on_packet(data(1))  # detects 0
        agent.on_packet(repair(0))
        agent.on_packet(repair(0))
        assert agent.recoveries == [0]

    def test_on_new_packet_fires_for_every_first_arrival(self, world):
        agent = probe(world)
        agent.on_packet(data(0))
        agent.on_packet(data(2))
        agent.on_packet(repair(1))
        agent.on_packet(data(2))  # duplicate
        assert agent.new_packets == [0, 2, 1]

    def test_force_detect(self, world):
        agent = probe(world)
        agent.force_detect(3)
        assert [seq for seq, _ in agent.losses] == [3]
        agent.force_detect(3)  # idempotent
        assert len(agent.losses) == 1
        agent.on_packet(data(0))
        agent.force_detect(0)  # already received: no-op
        assert len(agent.losses) == 1


class TestCompletionTracker:
    def test_counts_down(self):
        tracker = CompletionTracker(2, 3)
        assert tracker.expected == 6
        for _ in range(6):
            assert not tracker.complete
            tracker.mark_received()
        assert tracker.complete
        assert tracker.remaining == 0

    def test_overcount_raises(self):
        tracker = CompletionTracker(1, 1)
        tracker.mark_received()
        with pytest.raises(ValueError):
            tracker.mark_received()

    def test_agent_marks_only_in_range(self, world):
        agent = probe(world)
        before = world.tracker.remaining
        agent.on_packet(data(world.num_packets + 3))  # out of range
        assert world.tracker.remaining == before
        agent.on_packet(data(0))
        assert world.tracker.remaining == before - 1


class TestStreamDriver:
    def test_stream_delivers_all_packets(self, world):
        agents = [probe(world, n) for n in (world.CA, world.CB, world.CC)]
        source = SourceRecoverySourceAgent(world.S, world.network, False)
        world.network.attach_agent(world.S, source)
        driver = StreamDriver(
            world.network, source, StreamConfig(num_packets=5), world.tracker
        )
        driver.start()
        world.events.run(stop_when=lambda: world.tracker.complete)
        for agent in agents:
            assert agent.received == set(range(5))
        assert world.tracker.complete

    def test_sessions_stop_after_completion(self):
        from tests.protocols.conftest import SmallWorld

        world = SmallWorld(num_packets=2)
        for n in (world.CA, world.CB, world.CC):
            probe(world, n)
        source = SourceRecoverySourceAgent(world.S, world.network, False)
        world.network.attach_agent(world.S, source)
        driver = StreamDriver(
            world.network,
            source,
            StreamConfig(num_packets=2, session_interval=5.0),
            world.tracker,
        )
        driver.start()
        world.events.run(max_events=10_000)  # drains: sessions terminate
        assert world.tracker.complete

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(num_packets=0)
        with pytest.raises(ValueError):
            StreamConfig(num_packets=1, data_interval=0.0)
        with pytest.raises(ValueError):
            StreamConfig(num_packets=1, session_interval=-1.0)


class TestRepairDeduper:
    def test_first_repair_allowed(self, world):
        deduper = RepairDeduper(world.tree)
        assert deduper.should_repair(0, 0, now=0.0)

    def test_duplicate_within_hold_suppressed(self, world):
        deduper = RepairDeduper(world.tree)
        assert deduper.should_repair(0, 0, now=0.0)
        assert not deduper.should_repair(0, 0, now=0.1)

    def test_expired_hold_allows_again(self, world):
        deduper = RepairDeduper(world.tree)
        assert deduper.should_repair(0, 0, now=0.0)
        assert deduper.should_repair(0, 0, now=1e9)

    def test_descendant_root_covered(self, world):
        deduper = RepairDeduper(world.tree)
        assert deduper.should_repair(0, 0, now=0.0)  # subtree at r0
        # r1 is inside r0's subtree: covered.
        assert not deduper.should_repair(0, 1, now=0.1)

    def test_wider_root_not_covered(self, world):
        deduper = RepairDeduper(world.tree)
        assert deduper.should_repair(0, 1, now=0.0)  # subtree at r1
        # r0 is *above* r1: previous repair did not cover cC.
        assert deduper.should_repair(0, 0, now=0.1)

    def test_different_seq_independent(self, world):
        deduper = RepairDeduper(world.tree)
        assert deduper.should_repair(0, 0, now=0.0)
        assert deduper.should_repair(1, 0, now=0.0)
