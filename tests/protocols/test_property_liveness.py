"""Property-based chaos: hardened protocols always terminate.

Hypothesis drives both the scenario space and the fault space — random
crash windows, burst loss, link downs and recovery black-holing on
random topologies — and the invariant is the hardened-recovery
guarantee: after the run drains, **every** detected loss has reached an
explicit terminal state (recovered or abandoned), no timer is left
armed, and the completion tracker settled every slot.  A violation of
any of these is exactly the class of bug the fault subsystem exists to
flush out: a retry loop that forgets a seq, a timeout that never fires,
an abandonment that leaks its timer.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario, run_protocol_detailed
from repro.protocols.naive import NaiveConfig, NearestPeerProtocolFactory
from repro.protocols.policy import RecoveryPolicy
from repro.protocols.rma import RMAConfig, RMAProtocolFactory
from repro.protocols.rp import RPConfig, RPProtocolFactory
from repro.protocols.source import SourceConfig, SourceProtocolFactory
from repro.protocols.srm import SRMConfig, SRMProtocolFactory
from repro.sim.faults import random_fault_schedule
from repro.sim.rng import RngStreams


def _factory(name):
    policy = RecoveryPolicy.hardened()
    return {
        "rp": lambda: RPProtocolFactory(RPConfig(recovery_policy=policy)),
        "srm": lambda: SRMProtocolFactory(SRMConfig(max_request_rounds=4)),
        "rma": lambda: RMAProtocolFactory(RMAConfig(recovery_policy=policy)),
        "source": lambda: SourceProtocolFactory(
            SourceConfig(recovery_policy=policy)
        ),
        "nearest": lambda: NearestPeerProtocolFactory(
            NaiveConfig(recovery_policy=policy)
        ),
    }[name]()


chaos_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "num_routers": st.integers(min_value=8, max_value=30),
        "loss_prob": st.sampled_from([0.0, 0.05, 0.12]),
        "intensity": st.sampled_from([0.15, 0.4, 0.7, 1.0]),
        "protocol": st.sampled_from(["rp", "srm", "rma", "source", "nearest"]),
    }
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=chaos_strategy)
def test_every_detected_loss_terminates_under_faults(params):
    config = ScenarioConfig(
        seed=params["seed"],
        num_routers=params["num_routers"],
        loss_prob=params["loss_prob"],
        num_packets=6,
        max_events=5_000_000,
        lossless_recovery=False,
    )
    built = build_scenario(config)
    horizon = (
        config.num_packets * config.data_interval
        + 2.0 * config.session_interval
    )
    crash_candidates = [
        c for c in built.tree.clients if c != built.tree.root
    ]
    schedule = random_fault_schedule(
        params["intensity"],
        RngStreams(params["seed"]).get("fault-schedule"),
        crash_candidates,
        built.topology.links,
        horizon,
    )
    # run_protocol_detailed raises LivenessError itself if any recovery
    # hangs; the assertions below re-state the invariant on the report.
    artifacts = run_protocol_detailed(
        built, _factory(params["protocol"]), faults=schedule
    )
    log = artifacts.log
    assert log.unterminated() == []
    assert artifacts.liveness is not None
    assert artifacts.liveness.ok
    # Terminated means *settled*: no armed timer survives the drain.
    assert artifacts.liveness.pending_timers == 0
    # Every abandonment was explicit and accounted.
    assert artifacts.liveness.abandoned == log.num_abandoned
    assert (
        log.num_recovered + log.num_abandoned == log.num_detected
    )
