"""Tests for the RP protocol runtime: list execution, timeouts, source
fallback, repair service, deduplication."""

import pytest

from repro.core.candidates import Candidate
from repro.core.planner import RecoveryStrategy
from repro.protocols.rp import RPClientAgent, RPConfig, RPProtocolFactory, RPSourceAgent
from repro.sim.packet import Packet, PacketKind


def make_strategy(client, peers, timeouts, source_rtt=20.0, ds_u=3):
    attempts = tuple(Candidate(node=p, ds=ds, rtt=5.0) for p, ds in peers)
    return RecoveryStrategy(
        client=client,
        attempts=attempts,
        timeouts=tuple(timeouts),
        source_rtt=source_rtt,
        source_timeout=source_rtt * 1.5 + 1,
        expected_delay=0.0,
        ds_u=ds_u,
    )


class Sink:
    """Captures packets delivered to a node."""

    def __init__(self, events):
        self.events = events
        self.packets = []

    def on_packet(self, packet):
        self.packets.append((self.events.now, packet))


def install_rp_client(world, strategy):
    agent = RPClientAgent(
        world.CA, world.network, world.log, world.tracker, world.num_packets,
        strategy,
    )
    world.network.attach_agent(world.CA, agent)
    return agent


def data(seq):
    return Packet(PacketKind.DATA, seq, origin=2)


class TestListExecution:
    def test_first_request_goes_to_first_peer(self, world):
        strategy = make_strategy(world.CA, [(world.CB, 2), (world.CC, 1)],
                                 [10.0, 10.0])
        agent = install_rp_client(world, strategy)
        sink_b = Sink(world.events)
        world.network.attach_agent(world.CB, sink_b)
        agent.on_packet(data(1))  # detect loss of 0
        world.events.run(until=5.0)
        kinds = [p.kind for _, p in sink_b.packets]
        assert kinds == [PacketKind.REQUEST]

    def test_timeout_advances_to_next_peer(self, world):
        strategy = make_strategy(world.CA, [(world.CB, 2), (world.CC, 1)],
                                 [4.0, 8.0])
        agent = install_rp_client(world, strategy)
        sink_c = Sink(world.events)
        world.network.attach_agent(world.CC, sink_c)
        # CB has no agent -> silent peer; CA times out after 4.0 and asks CC.
        agent.on_packet(data(1))
        world.events.run(until=20.0)
        assert [p.kind for _, p in sink_c.packets] == [PacketKind.REQUEST]
        assert sink_c.packets[0][0] >= 4.0

    def test_exhausted_list_requests_source(self, world):
        strategy = make_strategy(world.CA, [(world.CB, 2)], [3.0])
        agent = install_rp_client(world, strategy)
        sink_s = Sink(world.events)
        world.network.attach_agent(world.S, sink_s)
        agent.on_packet(data(1))
        world.events.run(until=30.0)
        assert PacketKind.REQUEST in [p.kind for _, p in sink_s.packets]

    def test_empty_list_goes_straight_to_source(self, world):
        strategy = make_strategy(world.CA, [], [])
        agent = install_rp_client(world, strategy)
        sink_s = Sink(world.events)
        world.network.attach_agent(world.S, sink_s)
        agent.on_packet(data(1))
        world.events.run(until=10.0)
        assert [p.kind for _, p in sink_s.packets] == [PacketKind.REQUEST]

    def test_source_request_retried_until_answered(self, world):
        strategy = make_strategy(world.CA, [], [])
        agent = install_rp_client(world, strategy)
        sink_s = Sink(world.events)
        world.network.attach_agent(world.S, sink_s)  # never replies
        agent.on_packet(data(1))
        world.events.run(until=200.0)
        requests = [p for _, p in sink_s.packets if p.kind is PacketKind.REQUEST]
        assert len(requests) >= 3

    def test_repair_cancels_pending_timer(self, world):
        strategy = make_strategy(world.CA, [(world.CB, 2), (world.CC, 1)],
                                 [50.0, 50.0])
        agent = install_rp_client(world, strategy)
        sink_c = Sink(world.events)
        world.network.attach_agent(world.CC, sink_c)
        agent.on_packet(data(1))
        # Repair arrives before CB's timeout.
        agent.on_packet(Packet(PacketKind.REPAIR, 0, origin=world.CB))
        world.events.run(until=200.0)
        assert sink_c.packets == []  # second attempt never happened
        assert world.log.is_recovered(world.CA, 0)


class TestPeerService:
    def test_peer_with_packet_unicasts_repair(self, world):
        strategy = make_strategy(world.CA, [], [])
        agent = install_rp_client(world, strategy)
        agent.on_packet(data(0))  # CA now has seq 0
        sink_b = Sink(world.events)
        world.network.attach_agent(world.CB, sink_b)
        agent.on_packet(Packet(PacketKind.REQUEST, 0, origin=world.CB))
        world.events.run(until=10.0)
        repairs = [p for _, p in sink_b.packets if p.kind is PacketKind.REPAIR]
        assert len(repairs) == 1
        assert repairs[0].seq == 0

    def test_peer_without_packet_stays_silent(self, world):
        strategy = make_strategy(world.CA, [], [])
        agent = install_rp_client(world, strategy)
        sink_b = Sink(world.events)
        world.network.attach_agent(world.CB, sink_b)
        agent.on_packet(Packet(PacketKind.REQUEST, 0, origin=world.CB))
        world.events.run(until=10.0)
        assert sink_b.packets == []


class TestSourceAgent:
    def test_subgroup_multicast_repair(self, world):
        source = RPSourceAgent(world.S, world.network, source_multicast=True)
        world.network.attach_agent(world.S, source)
        source.next_seq = 3
        sinks = {n: Sink(world.events) for n in (world.CA, world.CB, world.CC)}
        for n, s in sinks.items():
            world.network.attach_agent(n, s)
        source.on_packet(Packet(PacketKind.REQUEST, 0, origin=world.CA))
        world.events.run(until=20.0)
        # Subgroup = subtree under the source's only child r0: everyone.
        for sink in sinks.values():
            assert PacketKind.REPAIR in [p.kind for _, p in sink.packets]

    def test_unicast_mode_repairs_requester_only(self, world):
        source = RPSourceAgent(world.S, world.network, source_multicast=False)
        world.network.attach_agent(world.S, source)
        source.next_seq = 3
        sinks = {n: Sink(world.events) for n in (world.CA, world.CB)}
        for n, s in sinks.items():
            world.network.attach_agent(n, s)
        source.on_packet(Packet(PacketKind.REQUEST, 0, origin=world.CA))
        world.events.run(until=20.0)
        assert [p.kind for _, p in sinks[world.CA].packets] == [PacketKind.REPAIR]
        assert sinks[world.CB].packets == []

    def test_request_for_unsent_data_ignored(self, world):
        source = RPSourceAgent(world.S, world.network, source_multicast=False)
        world.network.attach_agent(world.S, source)
        source.next_seq = 1
        sink = Sink(world.events)
        world.network.attach_agent(world.CA, sink)
        source.on_packet(Packet(PacketKind.REQUEST, 5, origin=world.CA))
        world.events.run(until=10.0)
        assert sink.packets == []

    def test_duplicate_requests_deduplicated(self, world):
        source = RPSourceAgent(world.S, world.network, source_multicast=True)
        world.network.attach_agent(world.S, source)
        source.next_seq = 3
        # Two requests inside the hold window (2 x subtree span = 4ms):
        # one flood + one unicast.
        source.on_packet(Packet(PacketKind.REQUEST, 0, origin=world.CA))
        world.events.run(until=3.5)  # flood fully propagated, hold active
        flood_hops = world.ledger.recovery_hops
        source.on_packet(Packet(PacketKind.REQUEST, 0, origin=world.CB))
        world.events.run(until=40.0)
        unicast_hops = world.ledger.recovery_hops - flood_hops
        assert flood_hops == world.tree.num_tree_links
        # S -> r0 -> r1 -> cB is 3 hops, fewer than the 5-link flood.
        assert 0 < unicast_hops < flood_hops


class TestFactory:
    def test_install_attaches_all_agents(self, world):
        factory = RPProtocolFactory()
        from repro.sim.rng import RngStreams

        source = factory.install(
            world.network, world.log, world.tracker, RngStreams(0),
            world.num_packets,
        )
        assert source.node == world.S
        for client in world.tree.clients:
            assert isinstance(world.network.agent_at(client), RPClientAgent)

    def test_config_restrictions_flow_through(self, world):
        from repro.core.strategy_graph import StrategyRestrictions
        from repro.sim.rng import RngStreams

        factory = RPProtocolFactory(
            RPConfig(restrictions=StrategyRestrictions(max_list_length=0))
        )
        factory.install(
            world.network, world.log, world.tracker, RngStreams(0),
            world.num_packets,
        )
        for client in world.tree.clients:
            agent = world.network.agent_at(client)
            assert len(agent.strategy.attempts) == 0


class TestNegativeAcks:
    def test_peer_replies_dont_have(self, world):
        from repro.sim.packet import Packet, PacketKind

        strategy = make_strategy(world.CA, [], [])
        agent = RPClientAgent(
            world.CA, world.network, world.log, world.tracker,
            world.num_packets, strategy, negative_acks=True,
        )
        world.network.attach_agent(world.CA, agent)
        sink_b = Sink(world.events)
        world.network.attach_agent(world.CB, sink_b)
        agent.on_packet(Packet(PacketKind.REQUEST, 0, origin=world.CB, req_id=9))
        world.events.run(until=10.0)
        kinds = [p.kind for _, p in sink_b.packets]
        assert kinds == [PacketKind.NACK]
        assert sink_b.packets[0][1].req_id == 9

    def test_nack_advances_without_timeout(self, world):
        from repro.sim.packet import Packet, PacketKind

        # Long timeouts: only a NACK can advance this fast.
        strategy = make_strategy(
            world.CA, [(world.CB, 2), (world.CC, 1)], [1000.0, 1000.0]
        )
        requester = RPClientAgent(
            world.CA, world.network, world.log, world.tracker,
            world.num_packets, strategy, negative_acks=True,
        )
        world.network.attach_agent(world.CA, requester)
        # CB is a NACK-capable peer without the packet.
        peer = RPClientAgent(
            world.CB, world.network, world.log, world.tracker,
            world.num_packets, make_strategy(world.CB, [], []),
            negative_acks=True,
        )
        world.network.attach_agent(world.CB, peer)
        sink_c = Sink(world.events)
        world.network.attach_agent(world.CC, sink_c)
        requester.on_packet(Packet(PacketKind.DATA, 1, origin=world.S))
        world.events.run(until=100.0)
        # The second attempt reached CC long before the 1000 ms timeout.
        assert [p.kind for _, p in sink_c.packets] == [PacketKind.REQUEST]
        assert sink_c.packets[0][0] < 50.0

    def test_stale_nack_ignored(self, world):
        from repro.sim.packet import Packet, PacketKind

        strategy = make_strategy(world.CA, [(world.CB, 2)], [5.0])
        agent = RPClientAgent(
            world.CA, world.network, world.log, world.tracker,
            world.num_packets, strategy, negative_acks=True,
        )
        world.network.attach_agent(world.CA, agent)
        agent.on_packet(Packet(PacketKind.DATA, 1, origin=world.S))
        # Deliver a NACK with a bogus req_id: must not advance anything.
        before = agent._pending[0].attempt_index
        agent.on_packet(Packet(PacketKind.NACK, 0, origin=world.CB, req_id=999))
        assert agent._pending[0].attempt_index == before

    def test_factory_uses_rtt_estimator_with_naks(self, world):
        from repro.core.objective import RttOnlyEstimator
        from repro.sim.rng import RngStreams

        factory = RPProtocolFactory(RPConfig(negative_acks=True))
        factory.install(
            world.network, world.log, world.tracker, RngStreams(0),
            world.num_packets,
        )
        # Agents got the negative-ack behaviour.
        for client in world.tree.clients:
            assert world.network.agent_at(client).negative_acks

    def test_end_to_end_reliable_with_naks(self):
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import build_scenario, run_protocol

        config = ScenarioConfig(
            seed=17, num_routers=25, loss_prob=0.1, num_packets=8,
            max_events=5_000_000,
        )
        built = build_scenario(config)
        summary = run_protocol(
            built, RPProtocolFactory(RPConfig(negative_acks=True))
        )
        assert summary.fully_recovered
