"""Tests for the RMA baseline: upstream ordering, one-by-one escalation,
subsumption, subtree repairs, the source deadline."""

import pytest

from repro.core.timeouts import FixedTimeout
from repro.protocols.rma import (
    RMAClientAgent,
    RMAConfig,
    RMAProtocolFactory,
    RMASourceAgent,
    upstream_receiver_order,
)
from repro.sim.packet import Packet, PacketKind
from repro.sim.rng import RngStreams


def data(seq):
    return Packet(PacketKind.DATA, seq, origin=2)


def install_rma(world, config=None):
    config = config or RMAConfig()
    agents = {}
    for client in (world.CA, world.CB, world.CC):
        agent = RMAClientAgent(
            client, world.network, world.log, world.tracker,
            world.num_packets, config,
        )
        world.network.attach_agent(client, agent)
        agents[client] = agent
    source = RMASourceAgent(world.S, world.network)
    world.network.attach_agent(world.S, source)
    return agents, source


class TestUpstreamOrder:
    def test_nearest_upstream_first(self, world):
        # For CA (under r1, depth 3): CB shares r1 (ds=2) -> nearest;
        # CC shares r0 (ds=1) -> second.
        agents, _ = install_rma(world)
        order = [peer for peer, _ in agents[world.CA].search_order]
        assert order == [world.CB, world.CC]

    def test_own_subtree_excluded(self, world):
        # For CC (under r0, depth 2): CA and CB share r0 (ds=1 < 2): both
        # upstream; neither is in CC's subtree.
        agents, _ = install_rma(world)
        order = [peer for peer, _ in agents[world.CC].search_order]
        assert set(order) == {world.CA, world.CB}

    def test_order_function_matches_agent(self, world):
        agents, _ = install_rma(world)
        assert (
            upstream_receiver_order(world.network, world.CA)
            == agents[world.CA].search_order
        )


class TestSearch:
    def test_first_request_to_nearest_upstream(self, world):
        config = RMAConfig(timeout_policy=FixedTimeout(50.0))
        agents, _ = install_rma(world, config)
        agents[world.CB].on_packet(data(0))  # CB holds seq 0
        agents[world.CA].on_packet(data(1))  # CA loses 0, asks CB
        world.events.run(until=300.0)
        assert world.log.is_recovered(world.CA, 0)

    def test_timeout_escalates_to_next(self, world):
        config = RMAConfig(timeout_policy=FixedTimeout(5.0))
        agents, _ = install_rma(world, config)
        # CB misses seq 0 too (silent subsume); CC holds it.
        agents[world.CC].on_packet(data(0))
        agents[world.CA].on_packet(data(1))
        world.events.run(until=500.0)
        assert world.log.is_recovered(world.CA, 0)

    def test_deadline_jumps_to_source(self, world):
        # Tiny deadline: the search goes to the source immediately after
        # the first timeout even though peers remain.
        config = RMAConfig(
            timeout_policy=FixedTimeout(5.0), source_deadline_factor=0.001
        )
        agents, source = install_rma(world, config)
        source.next_seq = 2
        agents[world.CA].on_packet(data(1))
        world.events.run(until=400.0)
        assert world.log.is_recovered(world.CA, 0)

    def test_source_repair_is_subtree_multicast(self, world):
        config = RMAConfig(source_deadline_factor=0.001)
        agents, source = install_rma(world, config)
        source.next_seq = 2
        # CA and CB both lose 0; CA's source repair covers CB too.
        agents[world.CA].on_packet(data(1))
        agents[world.CB].on_packet(data(1))
        world.events.run(until=1000.0)
        assert world.log.is_recovered(world.CA, 0)
        assert world.log.is_recovered(world.CB, 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RMAConfig(source_deadline_factor=0.0)


class TestSubsumption:
    def test_request_to_missing_peer_forces_detection(self, world):
        agents, _ = install_rma(world)
        cb = agents[world.CB]
        # CB has not even noticed seq 0 exists; the request teaches it.
        cb.on_packet(Packet(PacketKind.REQUEST, 0, origin=world.CA))
        assert 0 in cb.detected
        assert world.log.was_lost(world.CB, 0)

    def test_subsumed_request_flushed_on_recovery(self, world):
        agents, _ = install_rma(world)
        cb = agents[world.CB]
        cb.on_packet(Packet(PacketKind.REQUEST, 0, origin=world.CA))
        before = world.ledger.hops_by_kind[PacketKind.REPAIR]
        cb.on_packet(Packet(PacketKind.REPAIR, 0, origin=world.S))
        world.events.run(until=50.0)
        # CB multicast a repair covering CA once it got the packet.
        assert world.ledger.hops_by_kind[PacketKind.REPAIR] > before
        assert world.log.is_recovered(world.CA, 0) or any(
            p is not None for p in [world.network.agent_at(world.CA)]
        )

    def test_peer_with_packet_repairs_subtree(self, world):
        agents, _ = install_rma(world)
        cb = agents[world.CB]
        cb.on_packet(data(0))
        cb.on_packet(Packet(PacketKind.REQUEST, 0, origin=world.CA))
        world.events.run(until=50.0)
        # Repair multicast rooted at r1 (meeting of CA and CB): 2 links
        # up... CB -> r1 (1 hop) then down to CA and CB (2 hops).
        assert world.ledger.hops_by_kind[PacketKind.REPAIR] >= 2


class TestFactory:
    def test_install(self, world):
        factory = RMAProtocolFactory()
        source = factory.install(
            world.network, world.log, world.tracker, RngStreams(0),
            world.num_packets,
        )
        assert isinstance(source, RMASourceAgent)
        for client in world.tree.clients:
            assert isinstance(world.network.agent_at(client), RMAClientAgent)
