"""Property-based failure injection: every protocol achieves full
reliability on arbitrary random scenarios.

Hypothesis drives the scenario space — topology seed, backbone size,
per-link loss up to 25%, lossy vs lossless recovery traffic — and the
invariant is the problem statement itself (section 2): "such
applications need full reliability."  Any liveness bug (a dropped
timer, a suppressed retry, an unreachable fallback) surfaces here as an
unrecovered loss or an exhausted event budget.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario, run_protocol
from repro.protocols.naive import NearestPeerProtocolFactory, RandomListProtocolFactory
from repro.protocols.rma import RMAProtocolFactory
from repro.protocols.rp import RPProtocolFactory
from repro.protocols.source import SourceProtocolFactory
from repro.protocols.srm import SRMProtocolFactory

FACTORIES = {
    "rp": RPProtocolFactory,
    "srm": SRMProtocolFactory,
    "rma": RMAProtocolFactory,
    "source": SourceProtocolFactory,
    "random": RandomListProtocolFactory,
    "nearest": NearestPeerProtocolFactory,
}

scenario_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "num_routers": st.integers(min_value=5, max_value=35),
        "loss_prob": st.sampled_from([0.0, 0.02, 0.08, 0.15, 0.25]),
        "lossless_recovery": st.booleans(),
        "jitter": st.sampled_from([0.0, 0.3]),
        "protocol": st.sampled_from(sorted(FACTORIES)),
    }
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=scenario_strategy)
def test_every_protocol_fully_recovers_any_scenario(params):
    config = ScenarioConfig(
        seed=params["seed"],
        num_routers=params["num_routers"],
        loss_prob=params["loss_prob"],
        num_packets=6,
        max_events=3_000_000,
        lossless_recovery=params["lossless_recovery"],
        jitter=params["jitter"],
    )
    built = build_scenario(config)
    summary = run_protocol(built, FACTORIES[params["protocol"]]())
    # The core invariant: everything lost was recovered.
    assert summary.fully_recovered
    # Accounting invariants.
    assert summary.losses_recovered <= summary.num_clients * config.num_packets
    if params["loss_prob"] == 0.0:
        # No losses to detect... unless jitter reordered the stream,
        # which triggers (later retracted) false detections whose
        # requests legitimately consumed bandwidth.
        assert summary.losses_detected == 0
        if params["jitter"] == 0.0:
            assert summary.recovery_hops == 0
    if summary.losses_recovered:
        assert summary.avg_latency > 0.0
        assert summary.p50_latency <= summary.p95_latency
