"""Hardened-recovery tests: bounded retries, failure detection, and the
guaranteed terminal state (recovered or explicitly abandoned).

The full-run cases use a hand-checkable deterministic construction: a
link-down window makes client cA lose packet 0, then every node that
could supply a repair (the source and both other clients) crashes for
the rest of the run.  Under the default (paper) policy that recovery
would retry forever; a hardened policy must abandon it, settle the
completion tracker so the run drains, and leave a clean liveness report.
"""

import numpy as np
import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import BuiltScenario, run_protocol_detailed
from repro.metrics.collectors import BandwidthLedger, RecoveryLog
from repro.net.mcast_tree import MulticastTree
from repro.net.routing import RoutingTable
from repro.net.topology import NodeKind, Topology
from repro.protocols.base import ClientAgent, CompletionTracker
from repro.protocols.naive import NaiveConfig, NearestPeerProtocolFactory
from repro.protocols.policy import (
    DEFAULT_RECOVERY_POLICY,
    PeerFailureDetector,
    RecoveryPolicy,
)
from repro.protocols.rma import RMAConfig, RMAProtocolFactory
from repro.protocols.rp import RPConfig, RPProtocolFactory
from repro.protocols.source import SourceConfig, SourceProtocolFactory
from repro.protocols.srm import SRMConfig, SRMProtocolFactory
from repro.sim.engine import EventQueue
from repro.sim.faults import CrashWindow, FaultSchedule, LinkDownWindow
from repro.sim.network import SimNetwork
from repro.sim.packet import Packet, PacketKind


class TestRecoveryPolicy:
    def test_default_is_default(self):
        assert DEFAULT_RECOVERY_POLICY.is_default
        assert RecoveryPolicy().is_default
        assert not RecoveryPolicy.hardened().is_default

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_peer_retries=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(max_source_attempts=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RecoveryPolicy(max_backoff_scale=0.5)
        with pytest.raises(ValueError):
            RecoveryPolicy(failure_threshold=-1)

    def test_default_backoff_is_exactly_one(self):
        # Bit-identity with pre-hardening runs requires the default
        # policy to return the float 1.0 exactly, never a computed value.
        policy = DEFAULT_RECOVERY_POLICY
        for retries in (0, 1, 5, 50):
            assert policy.backoff_scale(retries) == 1.0

    def test_hardened_backoff_doubles_and_caps(self):
        policy = RecoveryPolicy.hardened()
        assert policy.backoff_scale(0) == 1.0
        assert policy.backoff_scale(1) == 2.0
        assert policy.backoff_scale(3) == 8.0
        assert policy.backoff_scale(100) == policy.max_backoff_scale


class TestPeerFailureDetector:
    def test_death_after_threshold_consecutive_timeouts(self):
        detector = PeerFailureDetector(3)
        assert not detector.record_timeout(7)
        assert not detector.record_timeout(7)
        assert detector.record_timeout(7)  # transition happens exactly once
        assert detector.is_dead(7)
        assert not detector.record_timeout(7)  # already dead — no re-fire
        assert detector.dead == frozenset({7})

    def test_alive_resets_the_streak(self):
        detector = PeerFailureDetector(2)
        detector.record_timeout(7)
        detector.record_alive(7)
        assert not detector.record_timeout(7)
        assert detector.record_timeout(7)

    def test_death_is_sticky(self):
        detector = PeerFailureDetector(1)
        detector.record_timeout(7)
        detector.record_alive(7)  # too late: death is permanent
        assert detector.is_dead(7)

    def test_on_death_callback_fires_once(self):
        deaths = []
        detector = PeerFailureDetector(1, on_death=deaths.append)
        detector.record_timeout(7)
        detector.record_timeout(7)
        detector.record_timeout(8)
        assert deaths == [7, 8]


class TestCompletionTrackerAbandonment:
    def test_abandonment_settles_the_slot(self):
        tracker = CompletionTracker(1, 2)
        tracker.mark_received()
        tracker.mark_abandoned()
        assert tracker.complete
        assert tracker.abandoned == 1

    def test_over_settlement_raises(self):
        tracker = CompletionTracker(1, 1)
        tracker.mark_abandoned()
        with pytest.raises(ValueError):
            tracker.mark_abandoned()
        with pytest.raises(ValueError):
            tracker.mark_received()


class _RecordingClient(ClientAgent):
    def on_loss_detected(self, seq):
        pass


def _small_world():
    topo = Topology()
    r0, r1 = topo.add_nodes(2, NodeKind.ROUTER)
    s = topo.add_node(NodeKind.SOURCE)
    ca, cb, cc = topo.add_nodes(3, NodeKind.CLIENT)
    topo.add_link(s, r0, 1.0)
    topo.add_link(r0, r1, 1.0)
    topo.add_link(r1, ca, 1.0)
    topo.add_link(r1, cb, 1.0)
    topo.add_link(r0, cc, 1.0)
    tree = MulticastTree(topo, s, {r0: s, r1: r0, ca: r1, cb: r1, cc: r0})
    return topo, tree, RoutingTable(topo), (s, r1, ca, cb, cc)


class TestClientAgentAbandon:
    def _agent(self):
        topo, tree, routing, (s, r1, ca, cb, cc) = _small_world()
        events = EventQueue()
        network = SimNetwork(
            events, topo, routing, tree,
            loss_rng=np.random.default_rng(0), ledger=BandwidthLedger(),
        )
        log = RecoveryLog()
        tracker = CompletionTracker(1, 2)
        agent = _RecordingClient(ca, network, log, tracker, num_packets=2)
        return agent, log, tracker

    def test_abandon_is_idempotent_and_settles_tracker(self):
        agent, log, tracker = self._agent()
        agent.log.loss_detected(agent.node, 0, 0.0)
        agent.abandon(0)
        agent.abandon(0)  # no double settlement
        assert log.num_abandoned == 1
        assert tracker.abandoned == 1
        assert log.unterminated() == []

    def test_late_repair_after_abandon_keeps_the_record(self):
        agent, log, tracker = self._agent()
        # Simulate the normal detection path, then abandonment, then a
        # straggler repair arriving long after the protocol gave up.
        agent.detected.add(0)
        agent.log.loss_detected(agent.node, 0, 0.0)
        agent.abandon(0)
        agent.on_packet(Packet(PacketKind.REPAIR, 0, origin=2))
        # The arrival is recorded as a recovery (history preserved, not
        # retracted) and the tracker slot is not settled twice.
        assert log.is_recovered(agent.node, 0)
        assert log.was_abandoned(agent.node, 0)
        assert log.num_abandoned == 0  # recovered after all
        assert tracker.remaining == 1  # only the untouched seq-1 slot

    def test_abandon_after_reception_is_a_noop(self):
        agent, log, tracker = self._agent()
        agent.on_packet(Packet(PacketKind.DATA, 0, origin=2))
        agent.abandon(0)
        assert log.num_abandoned == 0
        assert not agent.abandoned_seqs


def _abandonment_scenario():
    """cA loses packet 0 (link-down during its only transmission), then
    every possible repairer is crashed for the rest of the run."""
    topo, tree, routing, (s, r1, ca, cb, cc) = _small_world()
    config = ScenarioConfig(
        seed=3, num_routers=2, loss_prob=0.0, num_packets=2,
        lossless_recovery=False,
    )
    built = BuiltScenario(
        config=config, topology=topo, tree=tree, routing=routing
    )
    schedule = FaultSchedule(
        # Packet 0 crosses r1->cA at t=2; packet 1 (t=10) gets through.
        link_down_windows=(LinkDownWindow(r1, ca, 1.5, 4.0),),
        # Both packets delivered everywhere else by t=13; after that the
        # source and both peers are gone until far beyond the run.
        crash_windows=(
            CrashWindow(s, 13.5, 1e9),
            CrashWindow(cb, 13.5, 1e9),
            CrashWindow(cc, 13.5, 1e9),
        ),
    )
    return built, schedule, ca


HARDENED_FACTORIES = [
    pytest.param(
        lambda: RPProtocolFactory(
            RPConfig(recovery_policy=RecoveryPolicy.hardened())
        ),
        id="rp",
    ),
    pytest.param(
        lambda: SRMProtocolFactory(SRMConfig(max_request_rounds=2)), id="srm"
    ),
    pytest.param(
        lambda: RMAProtocolFactory(
            RMAConfig(recovery_policy=RecoveryPolicy.hardened())
        ),
        id="rma",
    ),
    pytest.param(
        lambda: SourceProtocolFactory(
            SourceConfig(recovery_policy=RecoveryPolicy.hardened())
        ),
        id="source",
    ),
    pytest.param(
        lambda: NearestPeerProtocolFactory(
            NaiveConfig(recovery_policy=RecoveryPolicy.hardened())
        ),
        id="nearest",
    ),
]


class TestGuaranteedTermination:
    @pytest.mark.parametrize("make_factory", HARDENED_FACTORIES)
    def test_unrepairable_loss_is_abandoned_not_hung(self, make_factory):
        built, schedule, ca = _abandonment_scenario()
        artifacts = run_protocol_detailed(
            built, make_factory(), faults=schedule
        )
        log = artifacts.log
        # The loss was detected, could not be repaired, and was
        # explicitly abandoned — the run drained instead of hanging.
        assert log.was_abandoned(ca, 0)
        assert log.num_abandoned == 1
        assert log.unterminated() == []
        assert artifacts.liveness is not None and artifacts.liveness.ok
        assert not artifacts.summary.fully_recovered
        assert artifacts.liveness.abandoned == 1
        # The injector counted the faults it injected along the way.
        assert artifacts.faults is not None
        assert artifacts.faults.counts.get("crash.rx_drop", 0) >= 1

    @pytest.mark.parametrize("make_factory", HARDENED_FACTORIES)
    def test_fault_free_hardened_run_fully_recovers(self, make_factory):
        # A hardened policy must not change behaviour when nothing
        # fails: plain lossy runs still recover everything.
        config = ScenarioConfig(
            seed=5, num_routers=20, loss_prob=0.08, num_packets=8,
            lossless_recovery=False,
        )
        from repro.experiments.runner import build_scenario

        built = build_scenario(config)
        artifacts = run_protocol_detailed(built, make_factory())
        assert artifacts.summary.fully_recovered
        assert artifacts.log.num_abandoned == 0


class TestFailureDetectorIntegration:
    def test_rp_falls_back_to_source_past_silent_peers(self):
        # cA's prioritized list under RP starts with peers; crashing
        # both peers (after they received the stream) forces request
        # timeouts until the attempt chain reaches the — alive — source.
        topo, tree, routing, (s, r1, ca, cb, cc) = _small_world()
        config = ScenarioConfig(
            seed=3, num_routers=2, loss_prob=0.0, num_packets=2,
            lossless_recovery=False,
        )
        built = BuiltScenario(
            config=config, topology=topo, tree=tree, routing=routing
        )
        schedule = FaultSchedule(
            link_down_windows=(LinkDownWindow(r1, ca, 1.5, 4.0),),
            crash_windows=(
                CrashWindow(cb, 13.5, 1e9),
                CrashWindow(cc, 13.5, 1e9),
            ),
        )
        policy = RecoveryPolicy.hardened()
        artifacts = run_protocol_detailed(
            built,
            RPProtocolFactory(RPConfig(recovery_policy=policy)),
            faults=schedule,
        )
        # The loss was recovered (the source answered) even though the
        # peers were dead the whole time.
        assert artifacts.log.is_recovered(ca, 0)
        assert artifacts.summary.fully_recovered

    def test_repeatedly_silent_peer_is_declared_dead(self):
        # cA misses the whole stream (its access link is down for the
        # stream's duration) and only learns about the five losses from
        # the first SESSION flush — by which time both peers have
        # crashed.  The NEAREST strategy (same hardened runtime as RP,
        # but its list always targets peers; RP's planner rightly goes
        # source-only on a world this small) repeatedly times out on the
        # dead peers, crosses the hardened failure threshold
        # (peer.dead), and still recovers every loss via the live
        # source fallback.
        from repro.obs.instrumentation import Instrumentation

        topo, tree, routing, (s, r1, ca, cb, cc) = _small_world()
        config = ScenarioConfig(
            seed=3, num_routers=2, loss_prob=0.0, num_packets=5,
            lossless_recovery=False,
        )
        built = BuiltScenario(
            config=config, topology=topo, tree=tree, routing=routing
        )
        schedule = FaultSchedule(
            # The stream's last copy crosses r1->cA at t=42; the window
            # spans all of it, so cA sees nothing until SESSION time.
            link_down_windows=(LinkDownWindow(r1, ca, 1.5, 43.5),),
            # Both peers received everything by t=43, then crash.
            crash_windows=(
                CrashWindow(cb, 45.0, 1e9),
                CrashWindow(cc, 45.0, 1e9),
            ),
        )
        instr = Instrumentation.recording(profile=False)
        artifacts = run_protocol_detailed(
            built,
            NearestPeerProtocolFactory(
                NaiveConfig(
                    list_length=2,
                    recovery_policy=RecoveryPolicy.hardened(),
                )
            ),
            instrumentation=instr,
            faults=schedule,
        )
        assert artifacts.summary.fully_recovered
        assert instr.registry.counter("fault.peer.dead").value >= 1
