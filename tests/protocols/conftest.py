"""Shared fixtures for protocol tests."""

import numpy as np
import pytest

from repro.metrics.collectors import BandwidthLedger, RecoveryLog
from repro.net.mcast_tree import MulticastTree
from repro.net.routing import RoutingTable
from repro.net.topology import NodeKind, Topology
from repro.protocols.base import CompletionTracker
from repro.sim.engine import EventQueue
from repro.sim.network import SimNetwork


class SmallWorld:
    """S - r0 - {r1 - {cA, cB}, cC} — three clients, hand-checkable.

    Ids: r0=0, r1=1, S=2, cA=3, cB=4, cC=5.  All link delays 1.0, so
    depths: cA/cB at 4 hops... (S=0, r0=1, r1=2, cA=3).
    """

    def __init__(self, loss_prob=0.0, seed=0, num_packets=5):
        topo = Topology()
        r0, r1 = topo.add_nodes(2, NodeKind.ROUTER)
        s = topo.add_node(NodeKind.SOURCE)
        ca, cb, cc = topo.add_nodes(3, NodeKind.CLIENT)
        topo.add_link(s, r0, 1.0, loss_prob)
        topo.add_link(r0, r1, 1.0, loss_prob)
        topo.add_link(r1, ca, 1.0, loss_prob)
        topo.add_link(r1, cb, 1.0, loss_prob)
        topo.add_link(r0, cc, 1.0, loss_prob)
        self.topology = topo
        self.tree = MulticastTree(
            topo, s, {r0: s, r1: r0, ca: r1, cb: r1, cc: r0}
        )
        self.routing = RoutingTable(topo)
        self.events = EventQueue()
        self.ledger = BandwidthLedger()
        self.log = RecoveryLog()
        self.num_packets = num_packets
        self.tracker = CompletionTracker(3, num_packets)
        self.network = SimNetwork(
            self.events,
            topo,
            self.routing,
            self.tree,
            loss_rng=np.random.default_rng(seed),
            ledger=self.ledger,
        )
        self.S, self.CA, self.CB, self.CC = s, ca, cb, cc


@pytest.fixture
def world():
    return SmallWorld()
