"""Tests for the source-based recovery baseline."""

import pytest

from repro.core.timeouts import FixedTimeout
from repro.protocols.source import (
    SourceConfig,
    SourceProtocolFactory,
    SourceRecoveryClientAgent,
    SourceRecoverySourceAgent,
)
from repro.sim.packet import Packet, PacketKind
from repro.sim.rng import RngStreams


def data(seq):
    return Packet(PacketKind.DATA, seq, origin=2)


def install(world, config=None):
    config = config or SourceConfig()
    policy = config.timeout_policy or FixedTimeout(20.0)
    agents = {}
    for client in (world.CA, world.CB, world.CC):
        agent = SourceRecoveryClientAgent(
            client, world.network, world.log, world.tracker,
            world.num_packets, policy,
        )
        world.network.attach_agent(client, agent)
        agents[client] = agent
    source = SourceRecoverySourceAgent(
        world.S, world.network, config.subgroup_multicast
    )
    world.network.attach_agent(world.S, source)
    return agents, source


class TestSourceRecovery:
    def test_loss_recovered_from_source(self, world):
        agents, source = install(world)
        source.next_seq = 2
        agents[world.CA].on_packet(data(1))
        world.events.run(until=200.0)
        assert world.log.is_recovered(world.CA, 0)

    def test_unicast_mode_touches_only_requester(self, world):
        agents, source = install(world)
        source.next_seq = 2
        agents[world.CA].on_packet(data(1))
        world.events.run(until=200.0)
        assert not world.log.was_lost(world.CB, 0)

    def test_subgroup_multicast_mode_covers_subgroup(self, world):
        agents, source = install(world, SourceConfig(subgroup_multicast=True))
        source.next_seq = 2
        # CB also lost 0 but never requests; CA's request repairs both.
        agents[world.CB].on_packet(data(1))
        agents[world.CA].on_packet(data(1))
        world.events.run(until=200.0)
        assert world.log.is_recovered(world.CA, 0)
        assert world.log.is_recovered(world.CB, 0)

    def test_retries_on_silent_source(self, world):
        # No source agent: requests vanish; the client must keep trying.
        policy = FixedTimeout(10.0)
        agent = SourceRecoveryClientAgent(
            world.CA, world.network, world.log, world.tracker,
            world.num_packets, policy,
        )
        world.network.attach_agent(world.CA, agent)
        agent.on_packet(data(1))
        world.events.run(until=100.0)
        assert world.ledger.hops_by_kind[PacketKind.REQUEST] >= 3 * 3

    def test_factory_install(self, world):
        factory = SourceProtocolFactory()
        source = factory.install(
            world.network, world.log, world.tracker, RngStreams(0),
            world.num_packets,
        )
        assert isinstance(source, SourceRecoverySourceAgent)
        assert factory.name == "SOURCE"
