"""Tests for the naive list-construction baselines."""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario, run_protocol
from repro.protocols.naive import (
    NaiveConfig,
    NearestPeerProtocolFactory,
    RandomListProtocolFactory,
)
from repro.protocols.rp import RPClientAgent
from repro.sim.rng import RngStreams


class TestConfig:
    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            NaiveConfig(list_length=-1)


class TestListConstruction:
    def test_nearest_lists_sorted_by_rtt(self, world):
        factory = NearestPeerProtocolFactory(NaiveConfig(list_length=2))
        factory.install(
            world.network, world.log, world.tracker, RngStreams(0),
            world.num_packets,
        )
        for client in world.tree.clients:
            agent = world.network.agent_at(client)
            assert isinstance(agent, RPClientAgent)
            rtts = [c.rtt for c in agent.strategy.attempts]
            assert rtts == sorted(rtts)
            assert len(rtts) <= 2

    def test_random_lists_have_requested_length(self, world):
        factory = RandomListProtocolFactory(NaiveConfig(list_length=2))
        factory.install(
            world.network, world.log, world.tracker, RngStreams(0),
            world.num_packets,
        )
        for client in world.tree.clients:
            agent = world.network.agent_at(client)
            peers = agent.strategy.peer_nodes
            assert len(peers) == 2  # 2 other clients exist
            assert client not in peers
            assert len(set(peers)) == len(peers)

    def test_random_lists_seeded(self, world):
        lists = []
        for _ in range(2):
            from tests.protocols.conftest import SmallWorld

            w = SmallWorld()
            factory = RandomListProtocolFactory(NaiveConfig(list_length=2))
            factory.install(
                w.network, w.log, w.tracker, RngStreams(9), w.num_packets
            )
            lists.append(
                {c: w.network.agent_at(c).strategy.peer_nodes
                 for c in w.tree.clients}
            )
        assert lists[0] == lists[1]

    def test_strategy_records_expected_delay(self, world):
        factory = NearestPeerProtocolFactory()
        factory.install(
            world.network, world.log, world.tracker, RngStreams(0),
            world.num_packets,
        )
        for client in world.tree.clients:
            agent = world.network.agent_at(client)
            assert agent.strategy.expected_delay > 0


class TestEndToEnd:
    @pytest.mark.parametrize(
        "factory_cls", [RandomListProtocolFactory, NearestPeerProtocolFactory]
    )
    def test_fully_reliable(self, factory_cls):
        config = ScenarioConfig(
            seed=13, num_routers=25, loss_prob=0.1, num_packets=8,
            max_events=5_000_000,
        )
        built = build_scenario(config)
        summary = run_protocol(built, factory_cls())
        assert summary.fully_recovered
        assert summary.losses_detected > 0


class TestAnalyticComparison:
    def test_planner_expected_delay_beats_naive_lists(self):
        """The planner's objective value is optimal, so the naive lists'
        recorded expected delays can never beat it — analytically, on
        the same network, for every client."""
        from repro.sim.rng import RngStreams
        from tests.protocols.conftest import SmallWorld

        import numpy as np
        from repro.core.planner import RPPlanner
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import build_scenario

        built = build_scenario(
            ScenarioConfig(seed=31, num_routers=30, loss_prob=0.05)
        )
        planner = RPPlanner(built.tree, built.routing)
        for factory_cls in (RandomListProtocolFactory, NearestPeerProtocolFactory):
            from repro.metrics.collectors import RecoveryLog
            from repro.protocols.base import CompletionTracker
            from repro.sim.engine import EventQueue
            from repro.sim.network import SimNetwork

            events = EventQueue()
            net = SimNetwork(
                events, built.topology, built.routing, built.tree,
                loss_rng=np.random.default_rng(0),
            )
            tracker = CompletionTracker(built.num_clients, 5)
            factory_cls().install(
                net, RecoveryLog(), tracker, RngStreams(3), 5
            )
            for client in built.clients:
                agent = net.agent_at(client)
                optimal = planner.plan(client).expected_delay
                assert optimal <= agent.strategy.expected_delay + 1e-9
