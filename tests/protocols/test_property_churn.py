"""Property-based churn: every protocol terminates under membership
dynamics.

Hypothesis drives random join/leave schedules over random topologies
through all five protocol runtimes, and the invariants are the
dynamic-membership guarantees:

* every detected loss reaches an explicit terminal state (recovered or
  abandoned) even when the peer it was recovering from left mid-flight;
* no timer survives the drain — a departing agent's teardown cancels
  everything it had armed;
* ``member.tx_drop`` stays zero: no send from a departed member ever
  reaches the membership boundary, which is the structural form of "no
  recovery settles against a departed peer";
* churn composes with crash faults (a member can churn *and* crash)
  without weakening any of the above.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario, run_protocol_detailed
from repro.protocols.naive import NaiveConfig, NearestPeerProtocolFactory
from repro.protocols.policy import RecoveryPolicy
from repro.protocols.rma import RMAConfig, RMAProtocolFactory
from repro.protocols.rp import RPConfig, RPProtocolFactory
from repro.protocols.source import SourceConfig, SourceProtocolFactory
from repro.protocols.srm import SRMConfig, SRMProtocolFactory
from repro.sim.faults import random_fault_schedule
from repro.sim.membership import random_membership_schedule
from repro.sim.rng import RngStreams


def _factory(name):
    policy = RecoveryPolicy.hardened()
    return {
        "rp": lambda: RPProtocolFactory(RPConfig(recovery_policy=policy)),
        "srm": lambda: SRMProtocolFactory(SRMConfig(max_request_rounds=4)),
        "rma": lambda: RMAProtocolFactory(RMAConfig(recovery_policy=policy)),
        "source": lambda: SourceProtocolFactory(
            SourceConfig(recovery_policy=policy)
        ),
        "nearest": lambda: NearestPeerProtocolFactory(
            NaiveConfig(recovery_policy=policy)
        ),
    }[name]()


def _horizon(config):
    return (
        config.num_packets * config.data_interval
        + 2.0 * config.session_interval
    )


def _assert_terminated(artifacts, config):
    log = artifacts.log
    assert log.unterminated() == []
    assert artifacts.liveness is not None
    assert artifacts.liveness.ok
    # Terminated means *settled*: no armed timer survives the drain.
    assert artifacts.liveness.pending_timers == 0
    assert log.num_recovered + log.num_abandoned == log.num_detected
    director = artifacts.membership
    assert director is not None
    # Teardown beat every armed send — nothing from a departed member
    # ever reached the membership boundary.
    assert director.counts.get("member.tx_drop", 0) == 0


churn_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "num_routers": st.integers(min_value=8, max_value=30),
        "loss_prob": st.sampled_from([0.0, 0.05, 0.12]),
        "intensity": st.sampled_from([0.3, 0.6, 1.0]),
        "protocol": st.sampled_from(["rp", "srm", "rma", "source", "nearest"]),
    }
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=churn_strategy)
def test_every_detected_loss_terminates_under_churn(params):
    config = ScenarioConfig(
        seed=params["seed"],
        num_routers=params["num_routers"],
        loss_prob=params["loss_prob"],
        num_packets=6,
        max_events=5_000_000,
        lossless_recovery=False,
    )
    built = build_scenario(config)
    candidates = [c for c in built.tree.clients if c != built.tree.root]
    schedule = random_membership_schedule(
        params["intensity"],
        RngStreams(params["seed"]).get("membership-schedule"),
        candidates,
        _horizon(config),
    )
    artifacts = run_protocol_detailed(
        built, _factory(params["protocol"]), membership=schedule
    )
    if schedule.is_null:
        assert artifacts.membership is None
        return
    _assert_terminated(artifacts, config)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=churn_strategy)
def test_churn_composes_with_crash_faults(params):
    # The same invariants must hold when a node can churn *and* crash.
    config = ScenarioConfig(
        seed=params["seed"],
        num_routers=params["num_routers"],
        loss_prob=params["loss_prob"],
        num_packets=6,
        max_events=5_000_000,
        lossless_recovery=False,
    )
    built = build_scenario(config)
    candidates = [c for c in built.tree.clients if c != built.tree.root]
    horizon = _horizon(config)
    streams = RngStreams(params["seed"])
    membership = random_membership_schedule(
        params["intensity"], streams.get("membership-schedule"),
        candidates, horizon,
    )
    faults = random_fault_schedule(
        0.4, streams.get("fault-schedule"), candidates,
        built.topology.links, horizon,
    )
    artifacts = run_protocol_detailed(
        built, _factory(params["protocol"]),
        faults=faults, membership=membership,
    )
    log = artifacts.log
    assert log.unterminated() == []
    assert artifacts.liveness is not None
    assert artifacts.liveness.ok
    assert artifacts.liveness.pending_timers == 0
    if artifacts.membership is not None:
        assert artifacts.membership.counts.get("member.tx_drop", 0) == 0
