"""Trace-level integration assertions: not just *that* recovery worked,
but that the packets moved the way each protocol specifies."""

import numpy as np
import pytest

from repro.metrics.collectors import BandwidthLedger, RecoveryLog
from repro.net.mcast_tree import MulticastTree
from repro.net.routing import RoutingTable
from repro.net.topology import NodeKind, Topology
from repro.protocols.base import CompletionTracker, StreamConfig, StreamDriver
from repro.protocols.rp import RPProtocolFactory
from repro.protocols.srm import SRMProtocolFactory
from repro.sim.engine import EventQueue
from repro.sim.network import SimNetwork
from repro.sim.packet import PacketKind
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceFilter, TraceKind, TraceRecorder


class RiggedLossRng:
    """Drops exactly the given 1-based draw indices."""

    def __init__(self, drop_at: set[int]):
        self.calls = 0
        self.drop_at = drop_at

    def random(self):
        self.calls += 1
        return 0.0 if self.calls in self.drop_at else 1.0


def build(factory, drop_draws, num_packets=3):
    """Line-ish topology with a shortcut so unicast != tree path."""
    topo = Topology()
    r0, r1 = topo.add_nodes(2, NodeKind.ROUTER)
    s = topo.add_node(NodeKind.SOURCE)
    ca, cb = topo.add_nodes(2, NodeKind.CLIENT)
    topo.add_link(s, r0, 2.0, 1e-9)
    topo.add_link(r0, r1, 2.0, 1e-9)
    topo.add_link(r1, ca, 2.0, 1e-9)
    topo.add_link(r0, cb, 2.0, 1e-9)
    topo.add_link(ca, cb, 1.0, 1e-9)  # direct shortcut, not in tree
    tree = MulticastTree(topo, s, {r0: s, r1: r0, ca: r1, cb: r0})
    events = EventQueue()
    log = RecoveryLog()
    net = SimNetwork(
        events, topo, RoutingTable(topo), tree,
        loss_rng=np.random.default_rng(1),
        ledger=BandwidthLedger(),
        data_loss_rng=RiggedLossRng(drop_draws),
    )
    recorder = TraceRecorder().attach(net)
    tracker = CompletionTracker(2, num_packets)
    source_agent = factory.install(net, log, tracker, RngStreams(0), num_packets)
    StreamDriver(net, source_agent, StreamConfig(num_packets=num_packets),
                 tracker).start()
    events.run(stop_when=lambda: tracker.complete, max_events=200_000)
    assert tracker.complete
    return topo, tree, log, recorder, (s, ca, cb)


class TestRPTraces:
    def test_repair_travels_unicast_shortcut(self):
        """cA loses seq 1 (dropped on r1->cA, draw 7); its planned peer
        is cB, and cB's repair must take the 1-hop shortcut — proving RP
        repairs are unicast on routed paths, not tree multicasts."""
        # DATA draws per multicast: links in cascade order:
        # S->r0 (1), r0->r1 (2), r0->cB (3), r1->cA (4) per packet.
        # Packet seq 1 uses draws 5..8; drop draw 8?? order within
        # cascade: children sorted -> r0 children [1, cb]; so order is
        # S->r0, r0->r1, r0->cB, r1->cA: seq 1 -> draws 5,6,7,8; drop
        # r1->cA = draw 8.
        topo, tree, log, recorder, (s, ca, cb) = build(
            RPProtocolFactory(), drop_draws={8}
        )
        assert log.is_recovered(ca, 1)
        repair_path = recorder.path_of(PacketKind.REPAIR, 1)
        assert (cb, ca) in repair_path  # the shortcut link
        request_path = recorder.path_of(PacketKind.REQUEST, 1)
        assert (ca, cb) in request_path

    def test_no_recovery_traffic_without_losses(self):
        _, _, log, recorder, _ = build(RPProtocolFactory(), drop_draws=set())
        assert log.num_detected == 0
        for kind in (PacketKind.REQUEST, PacketKind.REPAIR, PacketKind.NACK):
            assert recorder.path_of(kind, 0) == []
            assert recorder.path_of(kind, 1) == []


class TestSRMTraces:
    def test_nack_and_repair_are_tree_floods(self):
        """SRM's NACK must traverse tree links (not the shortcut), and
        the repair likewise floods the tree."""
        topo, tree, log, recorder, (s, ca, cb) = build(
            SRMProtocolFactory(), drop_draws={8}
        )
        assert log.is_recovered(ca, 1)
        nack_hops = recorder.path_of(PacketKind.NACK, 1)
        assert nack_hops, "expected at least one NACK flood"
        assert (ca, cb) not in nack_hops and (cb, ca) not in nack_hops
        # The NACK left cA toward its tree parent r1.
        assert (ca, 1) in nack_hops
        repair_hops = recorder.path_of(PacketKind.REPAIR, 1)
        assert repair_hops
        assert (ca, cb) not in repair_hops and (cb, ca) not in repair_hops
