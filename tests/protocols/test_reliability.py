"""End-to-end reliability: every protocol fully recovers every loss on
random topologies across the paper's loss range (full reliability is the
premise of the whole problem — "such applications need full
reliability", section 2)."""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario, run_protocol
from repro.protocols.rma import RMAProtocolFactory
from repro.protocols.rp import RPConfig, RPProtocolFactory
from repro.protocols.source import SourceProtocolFactory
from repro.protocols.srm import SRMProtocolFactory
from repro.sim.packet import PacketKind


FACTORIES = [
    RPProtocolFactory,
    SRMProtocolFactory,
    RMAProtocolFactory,
    SourceProtocolFactory,
]


def run(factory, seed=11, num_routers=30, loss_prob=0.05, num_packets=10):
    config = ScenarioConfig(
        seed=seed,
        num_routers=num_routers,
        loss_prob=loss_prob,
        num_packets=num_packets,
        max_events=5_000_000,
    )
    built = build_scenario(config)
    return run_protocol(built, factory()), built


class TestFullReliability:
    @pytest.mark.parametrize("factory", FACTORIES)
    @pytest.mark.parametrize("loss_prob", [0.02, 0.05, 0.20])
    def test_every_loss_recovered(self, factory, loss_prob):
        summary, _ = run(factory, loss_prob=loss_prob)
        assert summary.fully_recovered
        assert summary.losses_detected > 0  # scenario actually lossy

    @pytest.mark.parametrize("factory", FACTORIES)
    def test_lossless_run_has_no_recovery_traffic(self, factory):
        summary, _ = run(factory, loss_prob=0.0)
        assert summary.losses_detected == 0
        assert summary.recovery_hops == 0
        assert summary.avg_latency is None

    @pytest.mark.parametrize("factory", FACTORIES)
    def test_latencies_positive_and_finite(self, factory):
        summary, _ = run(factory)
        assert summary.avg_latency > 0.0
        assert summary.bandwidth_per_recovery > 0.0

    def test_detected_losses_nearly_identical_across_protocols(self):
        """The shared data-loss stream pairs the comparison: every
        protocol faces the same original losses.  Detected counts may
        differ by the handful of losses an opportunistic repair masked
        before the client noticed the gap, never by more."""
        counts = []
        for factory in FACTORIES:
            summary, _ = run(factory, seed=21)
            counts.append(summary.losses_detected)
        assert max(counts) - min(counts) <= max(2, max(counts) // 20)

    def test_rp_unicast_source_mode_also_reliable(self):
        config = ScenarioConfig(
            seed=11, num_routers=30, loss_prob=0.10, num_packets=10,
            max_events=5_000_000,
        )
        built = build_scenario(config)
        summary = run_protocol(
            built, RPProtocolFactory(RPConfig(source_multicast=False))
        )
        assert summary.fully_recovered


class TestRunnerDiscipline:
    def test_same_seed_reproducible(self):
        a, _ = run(RPProtocolFactory, seed=5)
        b, _ = run(RPProtocolFactory, seed=5)
        assert a.avg_latency == b.avg_latency
        assert a.recovery_hops == b.recovery_hops
        assert a.events_processed == b.events_processed

    def test_different_seeds_differ(self):
        a, _ = run(RPProtocolFactory, seed=5)
        b, _ = run(RPProtocolFactory, seed=6)
        assert (a.avg_latency, a.recovery_hops) != (b.avg_latency, b.recovery_hops)

    def test_summary_fields(self):
        summary, built = run(SRMProtocolFactory)
        assert summary.protocol == "SRM"
        assert summary.num_clients == built.num_clients
        assert summary.num_packets == 10
        assert summary.data_hops > 0
        assert summary.sim_time > 0
        assert summary.events_processed > 0
