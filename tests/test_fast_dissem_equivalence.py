"""Fast-vs-scalar dissemination equivalence: the array fast path is
bit-identical to the per-hop scalar path.

The contract (see repro.sim.dissem): identical RNG consumption,
identical arrival times, identical delivery sets, identical ledger
totals.  ``events_processed`` is the one quantity that legitimately
differs — the fast path schedules one event per delivery instead of one
per link traversal — so every summary comparison here is modulo that
counter, and everything else must match *exactly* (no tolerances).

Gating is covered too: jitter, congestion, faults, an enabled profiler
and the ``REPRO_FAST_DISSEM=0`` kill switch must each keep (or put) the
run on the scalar path without changing any simulated quantity.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario, run_protocol_detailed
from repro.obs.instrumentation import Instrumentation
from repro.protocols.naive import NearestPeerProtocolFactory
from repro.protocols.rma import RMAProtocolFactory
from repro.protocols.rp import RPProtocolFactory
from repro.protocols.source import SourceProtocolFactory
from repro.protocols.srm import SRMProtocolFactory
from repro.sim.faults import CrashWindow, FaultSchedule
from repro.sim.network import FAST_DISSEM_ENV

FACTORIES = [
    RPProtocolFactory,
    SRMProtocolFactory,
    RMAProtocolFactory,
    SourceProtocolFactory,
    NearestPeerProtocolFactory,
]

BASE = dict(seed=11, num_routers=30, loss_prob=0.08, num_packets=8)


@pytest.fixture
def dissem_env(monkeypatch):
    """Force the fast path on (1) or off (0) for one run."""

    def set_mode(on: bool) -> None:
        monkeypatch.setenv(FAST_DISSEM_ENV, "1" if on else "0")

    return set_mode


def _run(factory, config, instrumentation=None, faults=None, membership=None):
    return run_protocol_detailed(
        build_scenario(config), factory(),
        instrumentation=instrumentation, faults=faults, membership=membership,
    )


def _comparable(artifacts):
    """Everything that must match bit-for-bit, events_processed zeroed."""
    summary = dataclasses.replace(artifacts.summary, events_processed=0)
    return (
        json.dumps(dataclasses.asdict(summary), sort_keys=True, default=str),
        dict(artifacts.ledger.hops_by_kind),
        dict(artifacts.ledger.drops_by_kind),
        sorted(artifacts.log.latencies()),
        artifacts.log.outstanding(),
    )


class TestAllProtocolsBitIdentical:
    @pytest.mark.parametrize("factory", FACTORIES, ids=lambda f: f.name)
    @pytest.mark.parametrize("lossless_recovery", [False, True])
    def test_summary_and_ledger_match_scalar(
        self, factory, lossless_recovery, dissem_env
    ):
        config = ScenarioConfig(**BASE, lossless_recovery=lossless_recovery)
        dissem_env(False)
        scalar = _run(factory, config)
        dissem_env(True)
        fast = _run(factory, config)
        assert _comparable(fast) == _comparable(scalar)
        # The fast path must actually have fired somewhere — otherwise
        # this file tests nothing.  Under lossless_recovery every
        # recovery journey collapses to one event per delivery.
        if lossless_recovery:
            assert (
                fast.summary.events_processed
                < scalar.summary.events_processed
            )

    @pytest.mark.parametrize("factory", [RPProtocolFactory, SRMProtocolFactory])
    def test_telemetry_stream_matches_scalar(
        self, factory, dissem_env, tmp_path
    ):
        config = ScenarioConfig(**BASE)
        lines = {}
        for mode in (False, True):
            dissem_env(mode)
            path = tmp_path / f"events_{mode}.jsonl"
            instr = Instrumentation.recording(
                jsonl_path=path, profile=False
            )
            _run(factory, config, instrumentation=instr)
            instr.close()
            lines[mode] = path.read_text().splitlines()
        assert lines[True] == lines[False]

    def test_overlapping_cascades_still_identical(self, dissem_env):
        # data_interval far below the tree's delay span: consecutive
        # DATA cascades interleave in time, exercising the merged-order
        # whole-lane draw schedule rather than one cascade at a time.
        config = ScenarioConfig(
            seed=7, num_routers=60, loss_prob=0.1, num_packets=10,
            data_interval=2.0,
        )
        dissem_env(False)
        scalar = _run(RPProtocolFactory, config)
        dissem_env(True)
        fast = _run(RPProtocolFactory, config)
        assert _comparable(fast) == _comparable(scalar)

    def test_lossless_tree_collapses_every_multicast(self, dissem_env):
        config = ScenarioConfig(**{**BASE, "loss_prob": 0.0})
        dissem_env(False)
        scalar = _run(SRMProtocolFactory, config)
        dissem_env(True)
        fast = _run(SRMProtocolFactory, config)
        assert _comparable(fast) == _comparable(scalar)
        assert fast.summary.events_processed < scalar.summary.events_processed


class TestHypothesisSweep:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        loss=st.sampled_from([0.0, 0.02, 0.08, 0.15]),
        lossless_recovery=st.booleans(),
    )
    def test_rp_bit_identity_over_seeds_and_loss(
        self, seed, loss, lossless_recovery
    ):
        import os

        config = ScenarioConfig(
            seed=seed, num_routers=25, loss_prob=loss, num_packets=6,
            lossless_recovery=lossless_recovery,
        )
        prior = os.environ.get(FAST_DISSEM_ENV)
        try:
            os.environ[FAST_DISSEM_ENV] = "0"
            scalar = _run(RPProtocolFactory, config)
            os.environ[FAST_DISSEM_ENV] = "1"
            fast = _run(RPProtocolFactory, config)
        finally:
            if prior is None:
                os.environ.pop(FAST_DISSEM_ENV, None)
            else:
                os.environ[FAST_DISSEM_ENV] = prior
        assert _comparable(fast) == _comparable(scalar)


class TestGatingFallbacks:
    """Each ineligibility condition keeps the run scalar — and scalar
    means *identical to the kill switch*, events_processed included."""

    def _pair(self, dissem_env, config, **kw):
        dissem_env(False)
        off = _run(RPProtocolFactory, config, **kw)
        dissem_env(True)
        on = _run(RPProtocolFactory, config, **kw)
        return off, on

    def test_jitter_disables_fast_path(self, dissem_env):
        config = ScenarioConfig(**BASE, jitter=0.05)
        off, on = self._pair(dissem_env, config)
        assert on.summary == off.summary  # events_processed included

    def test_congestion_disables_fast_path(self, dissem_env):
        config = ScenarioConfig(**BASE, congestion_alpha=0.01)
        off, on = self._pair(dissem_env, config)
        assert on.summary == off.summary

    def test_faults_disable_fast_path(self, dissem_env):
        schedule = FaultSchedule(crash_windows=(CrashWindow(0, 80.0, 120.0),))
        config = ScenarioConfig(**BASE)
        off, on = self._pair(dissem_env, config, faults=schedule)
        assert on.summary == off.summary

    def test_churn_disables_fast_path(self, dissem_env):
        # Churn prunes/grafts the tree mid-run; the fast path snapshots
        # the dissemination arrays once, so an active membership
        # schedule must keep the run scalar (and identical to the kill
        # switch).
        from repro.sim.membership import LEAVE, MembershipEvent, MembershipSchedule

        config = ScenarioConfig(**BASE)
        built = build_scenario(config)
        churner = next(
            c for c in built.tree.clients if c != built.tree.root
        )
        schedule = MembershipSchedule(events=(
            MembershipEvent(time=40.0, node=churner, kind=LEAVE),
        ))
        off, on = self._pair(dissem_env, config, membership=schedule)
        assert on.summary == off.summary

    def test_enabled_profiler_disables_fast_path(self, dissem_env):
        config = ScenarioConfig(**BASE)
        dissem_env(True)
        instr = Instrumentation.recording(profile=True)
        profiled = _run(RPProtocolFactory, config, instrumentation=instr)
        dissem_env(False)
        scalar = _run(RPProtocolFactory, config)
        # The profiler's net.transmit scope counts every scalar hop, so
        # the profiled run must take the scalar path event for event.
        assert (
            profiled.summary.events_processed
            == scalar.summary.events_processed
        )

    def test_kill_switch_forces_scalar(self, dissem_env):
        config = ScenarioConfig(**BASE)
        dissem_env(True)
        fast = _run(RPProtocolFactory, config)
        dissem_env(False)
        scalar = _run(RPProtocolFactory, config)
        assert fast.summary.events_processed < scalar.summary.events_processed
        assert _comparable(fast) == _comparable(scalar)
