"""Unit tests for the span model and the causal tracer."""

import pytest

from repro.obs.spans import (
    CATEGORY_ATTEMPT,
    CATEGORY_LINK,
    CATEGORY_RECOVERY,
    NO_SPAN,
    Span,
    SpanStore,
    TraceContext,
)
from repro.obs.tracing import Tracer, sample_hash
from repro.sim.packet import PacketKind
from repro.sim.trace import TraceEvent, TraceKind


def _link(kind, packet_kind, trace_id, span_id, *, time=0.0, node=0, peer=1,
          seq=0, delay=1.0):
    return TraceEvent(
        time=time, kind=kind, packet_kind=packet_kind, seq=seq, origin=node,
        node=node, peer=peer, trace_id=trace_id, span_id=span_id, delay=delay,
    )


class TestSpan:
    def test_duration_and_annotate(self):
        span = Span(0, 1, NO_SPAN, "recovery", CATEGORY_RECOVERY, start=5.0)
        assert span.duration == 0.0
        span.end = 9.0
        assert span.duration == 4.0
        span.annotate(6.0, "fault.crash", node=3)
        assert span.annotations == [
            {"time": 6.0, "label": "fault.crash", "node": 3}
        ]

    def test_dict_round_trip(self):
        span = Span(
            2, 7, 3, "attempt[1]", CATEGORY_ATTEMPT, start=1.0, end=2.5,
            node=9, attrs={"rank": 1}, annotations=[{"time": 1.5, "label": "x"}],
        )
        assert Span.from_dict(span.to_dict()) == span


class TestSpanStore:
    def test_roots_and_by_trace(self):
        store = SpanStore()
        root = Span(0, 0, NO_SPAN, "recovery", CATEGORY_RECOVERY, 0.0)
        child = Span(0, 1, 0, "attempt[0]", CATEGORY_ATTEMPT, 0.0)
        store.add_trace([root, child])
        other = Span(1, 2, NO_SPAN, "recovery", CATEGORY_RECOVERY, 5.0)
        store.add_trace([other])
        assert len(store) == 3
        assert store.roots() == [root, other]
        assert store.by_trace() == {0: [root, child], 1: [other]}


class TestSampleHash:
    def test_deterministic_and_uniform_ish(self):
        values = [sample_hash(c, s) for c in range(40) for s in range(40)]
        assert values == [sample_hash(c, s) for c in range(40) for s in range(40)]
        assert all(0.0 <= v < 1.0 for v in values)
        # Crude uniformity: roughly half below 0.5.
        below = sum(v < 0.5 for v in values)
        assert 0.4 < below / len(values) < 0.6


class TestTracerLifecycle:
    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)

    def test_root_backdated_to_detection(self):
        tracer = Tracer()
        tracer.on_attempt(10.0, "rp", 3, 1, 1, 0, 7, "started", 2.0)
        tracer.on_attempt(14.0, "rp", 3, 1, 1, 0, 7, "succeeded", 6.0)
        spans = tracer.store.spans()
        root = next(s for s in spans if s.category == CATEGORY_RECOVERY)
        assert root.start == 8.0  # detection, not first send
        assert root.end == 14.0
        assert root.attrs["status"] == "succeeded"

    def test_attempt_tree_shape(self):
        tracer = Tracer()
        tracer.on_attempt(0.0, "rp", 3, 1, 1, 0, 7, "started", 0.0)
        tracer.on_attempt(5.0, "rp", 3, 1, 1, 0, 7, "timed_out", 5.0)
        tracer.on_attempt(5.0, "rp", 3, 1, 2, -1, 9, "started", 5.0)
        tracer.on_attempt(8.0, "rp", 3, 1, 2, -1, 9, "succeeded", 8.0)
        spans = tracer.store.spans()
        root = next(s for s in spans if s.category == CATEGORY_RECOVERY)
        attempts = [s for s in spans if s.category == CATEGORY_ATTEMPT]
        assert [a.name for a in attempts] == ["attempt[0]", "source_fallback"]
        assert all(a.parent_id == root.span_id for a in attempts)
        assert attempts[0].attrs["status"] == "timed_out"
        assert attempts[1].attrs["status"] == "succeeded"

    def test_context_follows_current_attempt(self):
        tracer = Tracer()
        assert tracer.ids(3, 1) == (NO_SPAN, NO_SPAN)
        assert tracer.context(3, 1) is None
        tracer.on_attempt(0.0, "rp", 3, 1, 1, 0, 7, "started", 0.0)
        trace_id, span_id = tracer.ids(3, 1)
        assert tracer.context(3, 1) == TraceContext(trace_id, span_id)
        first_span = span_id
        tracer.on_attempt(5.0, "rp", 3, 1, 1, 0, 7, "timed_out", 5.0)
        # Between attempts the root is the context.
        _, between = tracer.ids(3, 1)
        assert between != first_span
        tracer.on_attempt(5.0, "rp", 3, 1, 2, 1, 8, "started", 5.0)
        _, second = tracer.ids(3, 1)
        assert second not in (first_span, between)

    def test_terminal_without_start_is_ignored(self):
        tracer = Tracer()
        tracer.on_attempt(4.0, "srm", 3, 1, 0, 0, -1, "retracted", 4.0)
        assert len(tracer.store) == 0
        assert tracer.traces_started == 0

    def test_finish_promotes_unterminated(self):
        tracer = Tracer(sample_rate=0.0)
        tracer.on_attempt(0.0, "rp", 3, 1, 1, 0, 7, "started", 0.0)
        tracer.finish(50.0)
        roots = tracer.store.roots()
        assert len(roots) == 1
        assert roots[0].attrs["status"] == "unterminated"
        assert roots[0].end == 50.0


class TestTracerSampling:
    def test_sampled_out_counted(self):
        tracer = Tracer(sample_rate=0.0)
        tracer.on_attempt(0.0, "rp", 3, 1, 1, 0, 7, "started", 0.0)
        tracer.on_attempt(4.0, "rp", 3, 1, 1, 0, 7, "succeeded", 4.0)
        assert len(tracer.store) == 0
        assert tracer.store.sampled_out == 1
        assert tracer.traces_started == 1

    def test_abandonment_always_kept(self):
        tracer = Tracer(sample_rate=0.0)
        tracer.on_attempt(0.0, "rp", 3, 1, 1, 0, 7, "started", 0.0)
        tracer.on_attempt(9.0, "rp", 3, 1, 1, 0, 7, "abandoned", 9.0)
        assert len(tracer.store.roots()) == 1
        assert tracer.store.sampled_out == 0

    def test_abnormal_keep_can_be_disabled(self):
        tracer = Tracer(sample_rate=0.0, always_sample_abnormal=False)
        tracer.on_attempt(0.0, "rp", 3, 1, 1, 0, 7, "started", 0.0)
        tracer.on_attempt(9.0, "rp", 3, 1, 1, 0, 7, "abandoned", 9.0)
        assert len(tracer.store) == 0
        assert tracer.store.sampled_out == 1

    def test_fault_promotes_unsampled_trace(self):
        tracer = Tracer(sample_rate=0.0)
        tracer.on_attempt(0.0, "rp", 3, 1, 1, 0, 7, "started", 0.0)
        tracer.on_fault(2.0, "blackhole.request", 3, -1, 1)
        tracer.on_attempt(4.0, "rp", 3, 1, 1, 0, 7, "succeeded", 4.0)
        roots = tracer.store.roots()
        assert len(roots) == 1


class TestTracerLinkEvents:
    def _started(self, tracer):
        tracer.on_attempt(0.0, "rp", 3, 1, 1, 0, 7, "started", 0.0)
        return tracer.ids(3, 1)

    def test_transmit_becomes_link_span(self):
        tracer = Tracer()
        trace_id, span_id = self._started(tracer)
        tracer.on_link_event(_link(
            TraceKind.TRANSMIT, PacketKind.REQUEST, trace_id, span_id,
            time=1.0, node=5, peer=3, delay=2.0,
        ))
        tracer.on_attempt(6.0, "rp", 3, 1, 1, 0, 7, "succeeded", 6.0)
        links = [
            s for s in tracer.store.spans() if s.category == CATEGORY_LINK
        ]
        assert len(links) == 1
        link = links[0]
        assert link.name == "xmit.request"
        assert link.parent_id == span_id
        assert (link.start, link.end) == (1.0, 3.0)
        assert "dropped" not in link.attrs

    def test_drop_marked_and_zero_length(self):
        tracer = Tracer()
        trace_id, span_id = self._started(tracer)
        tracer.on_link_event(_link(
            TraceKind.DROP, PacketKind.REQUEST, trace_id, span_id, time=1.5,
        ))
        tracer.on_attempt(6.0, "rp", 3, 1, 1, 0, 7, "succeeded", 6.0)
        link = next(
            s for s in tracer.store.spans() if s.category == CATEGORY_LINK
        )
        assert link.attrs["dropped"] is True
        assert link.start == link.end == 1.5

    def test_repair_delivery_annotates_only_the_client(self):
        tracer = Tracer()
        trace_id, span_id = self._started(tracer)
        # Repair heard by a bystander: no annotation.
        tracer.on_link_event(_link(
            TraceKind.DELIVER, PacketKind.REPAIR, trace_id, span_id,
            time=3.0, node=9, delay=0.0,
        ))
        # Repair landing at the requesting client (3): annotated.
        tracer.on_link_event(_link(
            TraceKind.DELIVER, PacketKind.REPAIR, trace_id, span_id,
            time=4.0, node=3, delay=0.0,
        ))
        attempt = next(
            s for s in tracer.store._spans + list(tracer._by_trace.values())[0].spans
            if s.category == CATEGORY_ATTEMPT
        )
        labels = [a["label"] for a in attempt.annotations]
        assert labels == ["deliver.repair"]

    def test_request_delivery_annotates_only_the_peer(self):
        tracer = Tracer()
        trace_id, span_id = self._started(tracer)
        tracer.on_link_event(_link(
            TraceKind.DELIVER, PacketKind.REQUEST, trace_id, span_id,
            time=2.0, node=7, delay=0.0,
        ))
        tracer.on_link_event(_link(  # a router hop, not the target peer
            TraceKind.DELIVER, PacketKind.REQUEST, trace_id, span_id,
            time=2.5, node=6, delay=0.0,
        ))
        state = list(tracer._by_trace.values())[0]
        labels = [a["label"] for a in state.current.annotations]
        assert labels == ["deliver.request"]

    def test_untraced_and_late_events(self):
        tracer = Tracer()
        tracer.on_link_event(_link(
            TraceKind.TRANSMIT, PacketKind.DATA, -1, -1,
        ))
        assert tracer.store.late_events == 0  # untraced, not late
        tracer.on_link_event(_link(
            TraceKind.TRANSMIT, PacketKind.REPAIR, 123, 5,
        ))
        assert tracer.store.late_events == 1


class TestTracerAnnotations:
    def test_timer_annotations_attach_by_seq(self):
        tracer = Tracer()
        tracer.on_attempt(0.0, "rp", 3, 1, 1, 0, 7, "started", 0.0)
        tracer.on_timer(0.0, "rp", 3, "rp.request", "armed", 12.0, 1)
        tracer.on_timer(0.5, "rp", 3, "rp.request", "armed", 12.0, -1)  # no seq
        tracer.on_timer(1.0, "rp", 9, "rp.request", "armed", 12.0, 1)  # no trace
        state = list(tracer._by_trace.values())[0]
        assert state.current.annotations == [
            {"time": 0.0, "label": "timer.armed", "timer": "rp.request",
             "deadline": 12.0}
        ]

    def test_backoff_before_attempt_is_held_for_it(self):
        tracer = Tracer()
        tracer.on_attempt(0.0, "rp", 3, 1, 1, 0, 7, "started", 0.0)
        tracer.on_attempt(5.0, "rp", 3, 1, 1, 0, 7, "timed_out", 5.0)
        # RP emits the backoff before the attempt it scales.
        tracer.on_backoff(5.0, "rp", 3, 1, 1, 10.0)
        tracer.on_attempt(5.0, "rp", 3, 1, 2, -1, 9, "started", 5.0)
        state = list(tracer._by_trace.values())[0]
        assert state.current.annotations == [
            {"time": 5.0, "label": "backoff", "backoff": 1, "extra": 10.0}
        ]

    def test_backoff_during_attempt_attaches_directly(self):
        tracer = Tracer()
        tracer.on_attempt(0.0, "srm", 3, 1, 1, 0, -1, "started", 0.0)
        tracer.on_backoff(1.0, "srm", 3, 1, 1, 0.0)
        state = list(tracer._by_trace.values())[0]
        assert state.current.annotations[0]["label"] == "backoff"
