"""End-to-end causal tracing: well-formed span trees, determinism,
zero perturbation.

The hypothesis suite drives random topologies, protocols and fault
schedules and checks the structural invariants every trace must hold:
exactly one root per trace, every parent resolvable (no orphans),
every parent chain reaching the root without cycles — in particular
every delivered REPAIR's link span.  The determinism tests pin the
other two contracts: the span stream of a fixed seed is bit-identical
whether produced in-process or in a worker pool, and tracing never
changes what the simulation itself computes.
"""

from concurrent.futures import ProcessPoolExecutor

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario, run_protocol_detailed
from repro.obs import Instrumentation
from repro.obs.export import spans_to_jsonl
from repro.obs.spans import (
    CATEGORY_ATTEMPT,
    CATEGORY_LINK,
    CATEGORY_RECOVERY,
    NO_SPAN,
)
from repro.protocols.naive import (
    NaiveConfig,
    NearestPeerProtocolFactory,
    RandomListProtocolFactory,
)
from repro.protocols.policy import RecoveryPolicy
from repro.protocols.rma import RMAConfig, RMAProtocolFactory
from repro.protocols.rp import RPConfig, RPProtocolFactory
from repro.protocols.source import SourceConfig, SourceProtocolFactory
from repro.protocols.srm import SRMConfig, SRMProtocolFactory
from repro.sim.faults import random_fault_schedule
from repro.sim.rng import RngStreams


def _factory(name):
    policy = RecoveryPolicy.hardened()
    return {
        "rp": lambda: RPProtocolFactory(RPConfig(recovery_policy=policy)),
        "srm": lambda: SRMProtocolFactory(SRMConfig(max_request_rounds=4)),
        "rma": lambda: RMAProtocolFactory(RMAConfig(recovery_policy=policy)),
        "source": lambda: SourceProtocolFactory(
            SourceConfig(recovery_policy=policy)
        ),
        "nearest": lambda: NearestPeerProtocolFactory(
            NaiveConfig(recovery_policy=policy)
        ),
        "random": lambda: RandomListProtocolFactory(
            NaiveConfig(recovery_policy=policy)
        ),
    }[name]()


def assert_well_formed(store):
    """The structural invariants every kept trace must satisfy."""
    for trace_id, spans in store.by_trace().items():
        by_id = {s.span_id: s for s in spans}
        assert len(by_id) == len(spans), f"trace {trace_id}: duplicate ids"
        roots = [s for s in spans if s.parent_id == NO_SPAN]
        assert len(roots) == 1, f"trace {trace_id}: {len(roots)} roots"
        root = roots[0]
        assert root.category == CATEGORY_RECOVERY
        assert root.end is not None and "status" in root.attrs
        for span in spans:
            assert span.trace_id == trace_id
            # No orphans: every parent resolves inside the trace.
            if span.parent_id != NO_SPAN:
                assert span.parent_id in by_id, (
                    f"trace {trace_id}: span {span.span_id} orphaned"
                )
            # No cycles: the parent chain reaches the root.
            seen = set()
            cursor = span
            while cursor.parent_id != NO_SPAN:
                assert cursor.span_id not in seen, (
                    f"trace {trace_id}: cycle at span {cursor.span_id}"
                )
                seen.add(cursor.span_id)
                cursor = by_id[cursor.parent_id]
            assert cursor is root
            if span.category == CATEGORY_ATTEMPT:
                assert span.parent_id == root.span_id
                assert "status" in span.attrs
            if span.category == CATEGORY_LINK:
                assert span.end is not None


trace_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "num_routers": st.integers(min_value=8, max_value=30),
        "loss_prob": st.sampled_from([0.02, 0.05, 0.12]),
        "intensity": st.sampled_from([0.0, 0.3, 0.7]),
        "protocol": st.sampled_from(
            ["rp", "srm", "rma", "source", "nearest", "random"]
        ),
        "sample_rate": st.sampled_from([1.0, 0.5]),
    }
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=trace_strategy)
def test_span_trees_well_formed_across_scenarios(params):
    config = ScenarioConfig(
        seed=params["seed"],
        num_routers=params["num_routers"],
        loss_prob=params["loss_prob"],
        num_packets=6,
        max_events=5_000_000,
    )
    built = build_scenario(config)
    schedule = None
    if params["intensity"] > 0:
        horizon = (
            config.num_packets * config.data_interval
            + 2.0 * config.session_interval
        )
        schedule = random_fault_schedule(
            params["intensity"],
            RngStreams(params["seed"]).get("fault-schedule"),
            [c for c in built.tree.clients if c != built.tree.root],
            built.topology.links,
            horizon,
        )
    instr = Instrumentation.recording(
        trace=True, trace_sample_rate=params["sample_rate"]
    )
    artifacts = run_protocol_detailed(
        built, _factory(params["protocol"]), instrumentation=instr,
        faults=schedule,
    )
    store = artifacts.spans
    assert store is not None
    assert_well_formed(store)
    # Every delivered repair's span chain reaches the root — restated
    # explicitly on the repair link spans (assert_well_formed covers
    # them, this pins that they exist whenever recoveries succeeded).
    # Only meaningful at sample rate 1.0: a recovery can succeed off a
    # repair multicast that rides *another* client's trace, and under
    # partial sampling that other trace may have been sampled out.
    repairs = [s for s in store.spans() if s.name == "xmit.repair"]
    succeeded = [
        r for r in store.roots() if r.attrs.get("status") == "succeeded"
    ]
    if succeeded and params["sample_rate"] >= 1.0:
        assert repairs, "succeeded recoveries but no repair link spans"
    # Sampling accounting: every started trace is kept, sampled out, or
    # still would have been open (none after finish()).
    assert (
        len(store.roots()) + store.sampled_out
        == instr.tracer.traces_started
    )


def _span_stream(seed: int) -> str:
    """One traced RP run reduced to its span-stream JSONL (module-level
    so worker processes can import and run it)."""
    config = ScenarioConfig(
        seed=seed, num_routers=40, loss_prob=0.06, num_packets=20
    )
    built = build_scenario(config)
    instr = Instrumentation.recording(trace=True)
    artifacts = run_protocol_detailed(
        built, RPProtocolFactory(), instrumentation=instr
    )
    return spans_to_jsonl(artifacts.spans)


class TestDeterminism:
    def test_span_stream_identical_across_worker_processes(self):
        seeds = (3, 9)
        inline = [_span_stream(s) for s in seeds]
        with ProcessPoolExecutor(max_workers=2) as pool:
            parallel = list(pool.map(_span_stream, seeds))
        assert inline == parallel
        assert inline[0] != inline[1]  # different seeds actually differ

    def test_tracing_does_not_perturb_the_simulation(self):
        config = ScenarioConfig(
            seed=17, num_routers=40, loss_prob=0.08, num_packets=20
        )
        built = build_scenario(config)
        baseline = run_protocol_detailed(built, RPProtocolFactory())
        instr = Instrumentation.recording(trace=True)
        traced = run_protocol_detailed(
            built, RPProtocolFactory(), instrumentation=instr
        )
        # events_processed is a harness metric: the tracer's link
        # observer keeps the traced run on the scalar dissemination
        # path while the baseline takes the array fast path.  All
        # simulated quantities must match exactly.
        import dataclasses

        assert dataclasses.replace(
            traced.summary, events_processed=baseline.summary.events_processed
        ) == baseline.summary
        assert traced.log.latencies() == baseline.log.latencies()

    def test_sampling_decision_consults_no_rng(self):
        config = ScenarioConfig(
            seed=17, num_routers=40, loss_prob=0.08, num_packets=20
        )
        built = build_scenario(config)
        full = Instrumentation.recording(trace=True, trace_sample_rate=1.0)
        sampled = Instrumentation.recording(trace=True, trace_sample_rate=0.3)
        a = run_protocol_detailed(built, RPProtocolFactory(), instrumentation=full)
        b = run_protocol_detailed(
            built, RPProtocolFactory(), instrumentation=sampled
        )
        assert a.summary == b.summary
        assert 0 < len(b.spans.roots()) < len(a.spans.roots())
        assert b.spans.sampled_out > 0
        # The sampled runs keep a subset of the full run's traces.
        kept = {
            (r.attrs["client"], r.attrs["seq"]) for r in b.spans.roots()
        }
        full_keys = {
            (r.attrs["client"], r.attrs["seq"]) for r in a.spans.roots()
        }
        assert kept <= full_keys
