"""Span exporters: JSONL round-trip, Perfetto shape, determinism."""

import json

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario, run_protocol_detailed
from repro.obs import Instrumentation
from repro.obs.export import (
    read_spans_jsonl,
    spans_to_jsonl,
    to_perfetto,
    write_perfetto,
    write_spans_jsonl,
)
from repro.obs.spans import NO_SPAN, Span, SpanStore
from repro.protocols.rp import RPProtocolFactory


def _traced_store(seed=5):
    config = ScenarioConfig(
        seed=seed, num_routers=30, loss_prob=0.08, num_packets=15
    )
    built = build_scenario(config)
    instr = Instrumentation.recording(trace=True)
    artifacts = run_protocol_detailed(
        built, RPProtocolFactory(), instrumentation=instr
    )
    assert artifacts.spans is not None and len(artifacts.spans) > 0
    return artifacts.spans


class TestJsonl:
    def test_round_trip(self, tmp_path):
        store = _traced_store()
        path = write_spans_jsonl(store, tmp_path / "spans.jsonl")
        assert read_spans_jsonl(path) == store.spans()

    def test_empty_store(self):
        assert spans_to_jsonl(SpanStore()) == ""

    def test_accepts_plain_span_list(self):
        span = Span(0, 0, NO_SPAN, "recovery", "recovery", 0.0, end=1.0)
        text = spans_to_jsonl([span])
        assert json.loads(text) == span.to_dict()


class TestPerfetto:
    def test_structure(self):
        store = _traced_store()
        doc = to_perfetto(store)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i"}
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(store)
        for e in complete:
            assert e["dur"] >= 0
            assert {"name", "cat", "pid", "tid", "ts", "args"} <= set(e)
            assert "span_id" in e["args"] and "parent_id" in e["args"]
        # Every trace got a process_name metadata record.
        named = {
            e["pid"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert named == {root.trace_id for root in store.roots()}

    def test_instants_are_thread_scoped(self):
        store = _traced_store()
        instants = [
            e for e in to_perfetto(store)["traceEvents"] if e["ph"] == "i"
        ]
        assert instants  # timers/deliveries exist in any real run
        assert all(e["s"] == "t" for e in instants)

    def test_json_serializable(self, tmp_path):
        store = _traced_store()
        path = write_perfetto(store, tmp_path / "trace.json")
        json.loads(path.read_text())


class TestDeterminism:
    def test_same_seed_exports_are_byte_identical(self, tmp_path):
        a = write_perfetto(_traced_store(), tmp_path / "a.json")
        b = write_perfetto(_traced_store(), tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()
        ja = write_spans_jsonl(_traced_store(), tmp_path / "a.jsonl")
        jb = write_spans_jsonl(_traced_store(), tmp_path / "b.jsonl")
        assert ja.read_bytes() == jb.read_bytes()

    def test_different_seed_differs(self, tmp_path):
        a = spans_to_jsonl(_traced_store(seed=5))
        b = spans_to_jsonl(_traced_store(seed=6))
        assert a != b
