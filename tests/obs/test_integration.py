"""End-to-end telemetry checks against a real instrumented RP run.

One fixed-seed scenario is run once per module; every test inspects the
same artifacts.  The key invariants: the attempt-event stream is
consistent with the RecoveryLog ground truth (same recoveries, same
latencies), every event survives the JSONL round trip, and wiring the
instrumentation in does not perturb the simulation itself.
"""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario, run_protocol_detailed
from repro.obs import Instrumentation
from repro.obs.events import AttemptEvent
from repro.obs.sinks import read_jsonl
from repro.protocols.rp import RPProtocolFactory

CONFIG = ScenarioConfig(seed=3, num_routers=40, loss_prob=0.08, num_packets=10)


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    jsonl = tmp_path_factory.mktemp("obs") / "events.jsonl"
    built = build_scenario(CONFIG)
    instr = Instrumentation.recording(jsonl_path=jsonl)
    artifacts = run_protocol_detailed(
        built, RPProtocolFactory(), instrumentation=instr
    )
    instr.close()
    return artifacts, instr, jsonl


def _attempts(instr):
    return [e for e in instr.ring_events() if isinstance(e, AttemptEvent)]


class TestAttemptStream:
    def test_scenario_actually_exercises_recovery(self, run):
        artifacts, _, _ = run
        assert artifacts.summary.losses_detected > 0
        assert artifacts.summary.fully_recovered

    def test_one_started_event_per_request_counter(self, run):
        _, instr, _ = run
        started = [e for e in _attempts(instr) if e.status == "started"]
        assert started
        assert (
            instr.registry.counter("rp.attempts.started").value == len(started)
        )

    def test_succeeded_events_match_recovery_log(self, run):
        artifacts, instr, _ = run
        log = artifacts.log
        succeeded = [e for e in _attempts(instr) if e.status == "succeeded"]
        # Exactly one success event per recovered loss...
        keys = [(e.client, e.seq) for e in succeeded]
        assert len(keys) == len(set(keys)) == log.num_recovered
        for client, seq in keys:
            assert log.is_recovered(client, seq)
        # ...and its elapsed time IS that loss's recovery latency.
        assert sorted(e.elapsed for e in succeeded) == pytest.approx(
            sorted(log.latencies())
        )

    def test_success_attempt_index_counts_started_events(self, run):
        _, instr, _ = run
        started_per_key: dict[tuple[int, int], int] = {}
        for e in _attempts(instr):
            if e.status == "started":
                key = (e.client, e.seq)
                started_per_key[key] = started_per_key.get(key, 0) + 1
            elif e.status == "succeeded":
                assert e.attempt == started_per_key[(e.client, e.seq)]

    def test_report_built_from_same_stream(self, run):
        artifacts, _, _ = run
        report = artifacts.obs
        assert report is not None
        assert report.protocol == "rp"
        assert report.recoveries == artifacts.summary.losses_recovered
        assert sum(report.attempts_per_recovery.values()) == report.recoveries
        # RP supplies strategies, so list ranks carry model predictions.
        v_ranks = [r for r in report.per_rank if r.rank >= 0]
        assert v_ranks
        for r in v_ranks:
            assert r.predicted is None or 0.0 <= r.predicted <= 1.0


class TestJsonlStream:
    def test_file_holds_every_event(self, run):
        _, instr, jsonl = run
        assert list(read_jsonl(jsonl)) == instr.ring_events()

    def test_every_attempt_parseable(self, run):
        _, instr, jsonl = run
        from_file = [
            e for e in read_jsonl(jsonl) if isinstance(e, AttemptEvent)
        ]
        assert from_file == _attempts(instr)
        assert from_file  # the run produced attempts at all


class TestDeterminism:
    def test_instrumentation_does_not_perturb_the_run(self, run):
        artifacts, _, _ = run
        plain = run_protocol_detailed(build_scenario(CONFIG), RPProtocolFactory())
        # events_processed is a harness metric, not a simulated outcome:
        # the tracer's link observer makes the instrumented run take the
        # scalar dissemination path (one event per hop) where the plain
        # run takes the array fast path (one event per delivery).  Every
        # simulated quantity must still match exactly.
        import dataclasses

        assert dataclasses.replace(
            plain.summary, events_processed=artifacts.summary.events_processed
        ) == artifacts.summary
        assert plain.obs is None
