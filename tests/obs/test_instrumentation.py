"""Tests for the Instrumentation facade, profiler, and report folding."""

import pytest

from repro.obs import (
    NULL_INSTRUMENTATION,
    SOURCE_RANK,
    Instrumentation,
    ObsReport,
    build_obs_report,
)
from repro.obs.events import AttemptEvent
from repro.obs.profiler import Profiler


class TestProfiler:
    def test_scope_accumulates(self):
        prof = Profiler()
        with prof.scope("work"):
            pass
        with prof.scope("work"):
            pass
        stat = prof.stats()["work"]
        assert stat.count == 2
        assert stat.total >= 0.0
        assert prof.total("work") == stat.total

    def test_disabled_scope_records_nothing(self):
        prof = Profiler(enabled=False)
        with prof.scope("work"):
            pass
        assert prof.stats() == {}
        assert prof.total("work") == 0.0

    def test_top_ranked_by_total(self):
        prof = Profiler()
        prof.add("cheap", 0.001)
        prof.add("hot", 1.0, count=10)
        assert [s.name for s in prof.top(2)] == ["hot", "cheap"]
        assert prof.stats()["hot"].mean == pytest.approx(0.1)


class TestFacade:
    def test_null_is_shared_and_disabled(self):
        assert Instrumentation.null() is NULL_INSTRUMENTATION
        assert not NULL_INSTRUMENTATION.enabled
        # Emitting through it leaves no trace anywhere.
        NULL_INSTRUMENTATION.attempt(
            0.0, "rp", 1, 0, 1, 0, 2, "started"
        )
        NULL_INSTRUMENTATION.count("x")
        NULL_INSTRUMENTATION.observe("h", 1.0)
        assert NULL_INSTRUMENTATION.registry.names() == []
        assert NULL_INSTRUMENTATION.ring_events() == []

    def test_noop_counts_but_stores_no_events(self):
        instr = Instrumentation.noop()
        instr.attempt(0.0, "rp", 1, 0, 1, 0, 2, "started")
        assert instr.registry.counter("rp.attempts.started").value == 1
        assert not instr.bus.active
        assert instr.ring_events() == []
        assert not instr.profiler.enabled

    def test_recording_captures_typed_events(self):
        instr = Instrumentation.recording(capacity=16)
        instr.attempt(1.0, "rp", 7, 3, 1, 0, 12, "started")
        instr.attempt(41.0, "rp", 7, 3, 1, 0, 12, "timed_out", elapsed=40.0)
        instr.timer(1.0, "rp", 7, "rp.request", "armed", deadline=41.0)
        instr.backoff(2.0, "srm", 5, 9, 1)
        instr.phase(99.0, "session.complete")
        events = instr.ring_events()
        assert [e.kind for e in events] == [
            "attempt", "attempt", "timer", "backoff", "phase"
        ]
        assert events[1].elapsed == 40.0
        assert instr.registry.counter("rp.attempts.started").value == 1
        assert instr.registry.counter("rp.timers.armed").value == 1
        assert instr.registry.counter("srm.backoffs").value == 1
        assert instr.registry.counter("phase.session.complete").value == 1

    def test_recording_streams_to_jsonl(self, tmp_path):
        from repro.obs.sinks import read_jsonl

        path = tmp_path / "events.jsonl"
        instr = Instrumentation.recording(jsonl_path=path)
        instr.attempt(1.0, "rp", 7, 3, 1, 0, 12, "started")
        instr.close()
        assert list(read_jsonl(path)) == instr.ring_events()


def _attempt(time, client, seq, attempt, rank, status, elapsed=0.0):
    return AttemptEvent(
        time=time, protocol="rp", client=client, seq=seq, attempt=attempt,
        rank=rank, peer=0, status=status, elapsed=elapsed,
    )


class TestBuildReport:
    def _instr_with(self, events):
        instr = Instrumentation.recording(capacity=64)
        for event in events:
            instr.bus.emit(event)
        return instr

    def test_folds_attempt_outcomes(self):
        # Client 7 seq 3: v1 times out, source succeeds (2 attempts).
        # Client 8 seq 1: v1 succeeds first try.
        instr = self._instr_with([
            _attempt(0.0, 7, 3, 1, 0, "started"),
            _attempt(40.0, 7, 3, 1, 0, "timed_out", elapsed=40.0),
            _attempt(40.0, 7, 3, 2, SOURCE_RANK, "started"),
            _attempt(90.0, 7, 3, 2, SOURCE_RANK, "succeeded", elapsed=90.0),
            _attempt(0.0, 8, 1, 1, 0, "started"),
            _attempt(30.0, 8, 1, 1, 0, "succeeded", elapsed=30.0),
        ])
        report = build_obs_report(instr, protocol="rp")
        assert report.recoveries == 2
        assert report.attempts_total == 3
        assert report.attempts_by_status == {
            "started": 3, "timed_out": 1, "succeeded": 2
        }
        assert report.attempts_per_recovery == {1: 1, 2: 1}
        assert report.mean_attempts_per_recovery == pytest.approx(1.5)
        # v1 first, source last.
        assert [r.label for r in report.per_rank] == ["v1", "source"]
        v1, source = report.per_rank
        assert (v1.attempts, v1.successes, v1.timeouts) == (2, 1, 1)
        assert v1.success_rate == pytest.approx(0.5)
        assert (source.attempts, source.successes) == (1, 1)

    def test_report_round_trips_through_json(self):
        import json

        instr = self._instr_with([
            _attempt(0.0, 7, 3, 1, 0, "started"),
            _attempt(30.0, 7, 3, 1, 0, "succeeded", elapsed=30.0),
        ])
        report = build_obs_report(instr, protocol="rp")
        data = json.loads(json.dumps(report.to_dict()))
        restored = ObsReport.from_dict(data)
        assert restored == report
        assert "rp attempt-level breakdown" in restored.render()

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            ObsReport.from_dict({"schema": 999})

    def test_empty_run_renders(self):
        report = build_obs_report(Instrumentation.recording(), protocol="rp")
        assert report.recoveries == 0
        assert report.mean_attempts_per_recovery is None
        assert "recoveries: 0" in report.render()

    def test_ring_drops_surface_in_report_and_gauge(self):
        instr = Instrumentation.recording(capacity=4)
        for seq in range(4):
            instr.bus.emit(_attempt(float(seq), 7, seq, 1, 0, "started"))
        report = build_obs_report(instr, protocol="rp")
        assert report.events_dropped == 0
        assert "WARNING" not in report.render()
        for seq in range(4, 7):
            instr.bus.emit(_attempt(float(seq), 7, seq, 1, 0, "started"))
        report = build_obs_report(instr, protocol="rp")
        assert report.events_dropped == 3
        assert instr.registry.gauge("obs.ring.dropped").value == 3
        assert "ring buffer dropped 3 events" in report.render()
        assert report.to_dict()["events_dropped"] == 3

    def test_from_dict_tolerates_predrop_reports(self):
        instr = self._instr_with([
            _attempt(0.0, 7, 3, 1, 0, "started"),
            _attempt(30.0, 7, 3, 1, 0, "succeeded", elapsed=30.0),
        ])
        data = build_obs_report(instr, protocol="rp").to_dict()
        del data["events_dropped"]  # a report saved before the counter
        assert ObsReport.from_dict(data).events_dropped == 0
