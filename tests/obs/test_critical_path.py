"""Critical-path analysis: component attribution and model checks."""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario, run_protocol_detailed
from repro.obs import Instrumentation
from repro.obs.critical_path import (
    COMPONENTS,
    analyze,
    analyze_trace,
)
from repro.obs.events import SOURCE_RANK
from repro.obs.spans import (
    CATEGORY_ATTEMPT,
    CATEGORY_LINK,
    CATEGORY_RECOVERY,
    NO_SPAN,
    Span,
    SpanStore,
)
from repro.protocols.rp import RPProtocolFactory
from repro.protocols.srm import SRMProtocolFactory


def _root(trace_id=0, start=0.0, end=10.0, status="succeeded"):
    return Span(
        trace_id, 0, NO_SPAN, "recovery", CATEGORY_RECOVERY, start, end=end,
        node=3, attrs={"protocol": "rp", "client": 3, "seq": 1,
                       "status": status},
    )


def _attempt(span_id, start, end, status, rank=0, trace_id=0, peer=7):
    return Span(
        trace_id, span_id, 0, f"attempt[{rank}]", CATEGORY_ATTEMPT, start,
        end=end, node=3,
        attrs={"attempt": span_id, "rank": rank, "peer": peer,
               "status": status},
    )


class TestAnalyzeTrace:
    def test_succeeded_attempt_splits_by_milestones(self):
        root = _root(end=10.0)
        attempt = _attempt(1, 0.0, 10.0, "succeeded")
        attempt.annotate(3.0, "deliver.request", node=7)
        attempt.annotate(9.0, "deliver.repair", node=3)
        repair_hop = Span(
            0, 2, 1, "xmit.repair", CATEGORY_LINK, 5.0, end=9.0, node=6,
        )
        b = analyze_trace([root, attempt, repair_hop])
        assert b.components["request_transit"] == pytest.approx(3.0)
        assert b.components["peer_processing"] == pytest.approx(2.0)
        assert b.components["repair_transit"] == pytest.approx(4.0)
        assert b.components["other"] == pytest.approx(1.0)
        assert sum(b.components.values()) == pytest.approx(b.total)

    def test_instant_source_reply_keeps_request_transit(self):
        # The source answers on the tick the request arrives: the
        # deliver.request and first xmit.repair timestamps tie, and the
        # request leg must still be attributed to request_transit.
        root = _root(end=8.0)
        attempt = _attempt(1, 0.0, 8.0, "succeeded", rank=SOURCE_RANK)
        attempt.annotate(4.0, "deliver.request", node=7)
        attempt.annotate(8.0, "deliver.repair", node=3)
        repair_hop = Span(
            0, 2, 1, "xmit.repair", CATEGORY_LINK, 4.0, end=8.0, node=7,
        )
        b = analyze_trace([root, attempt, repair_hop])
        assert b.components["request_transit"] == pytest.approx(4.0)
        assert b.components["peer_processing"] == pytest.approx(0.0)
        assert b.components["repair_transit"] == pytest.approx(4.0)

    def test_timed_out_splits_backoff_from_slack(self):
        root = _root(end=30.0)
        first = _attempt(1, 0.0, 10.0, "timed_out")
        second = _attempt(2, 10.0, 30.0, "timed_out", rank=SOURCE_RANK)
        second.annotations.append(
            {"time": 10.0, "label": "backoff", "backoff": 1, "extra": 12.0}
        )
        b = analyze_trace([root, first, second])
        assert b.components["backoff"] == pytest.approx(12.0)
        assert b.components["timeout_slack"] == pytest.approx(18.0)

    def test_nacked_is_request_transit(self):
        root = _root(end=6.0)
        attempt = _attempt(1, 0.0, 6.0, "nacked")
        b = analyze_trace([root, attempt])
        assert b.components["request_transit"] == pytest.approx(6.0)

    def test_inter_attempt_gap_is_timeout_slack(self):
        # SRM arms a suppression timer before the first NACK leaves.
        root = _root(start=0.0, end=20.0)
        attempt = _attempt(1, 8.0, 20.0, "succeeded")
        b = analyze_trace([root, attempt])
        assert b.components["timeout_slack"] == pytest.approx(8.0)

    def test_no_root_returns_none(self):
        assert analyze_trace([_attempt(1, 0.0, 1.0, "succeeded")]) is None

    def test_components_always_sum_to_total(self):
        root = _root(end=17.0, status="retracted")
        spans = [
            root,
            _attempt(1, 0.0, 5.0, "timed_out"),
            _attempt(2, 5.0, 12.0, "nacked", rank=1),
        ]
        b = analyze_trace(spans)
        assert sum(b.components.values()) == pytest.approx(b.total)
        assert b.components["other"] == pytest.approx(5.0)  # retraction tail


def _run_traced(factory, **overrides):
    params = dict(
        seed=11, num_routers=60, loss_prob=0.05, num_packets=30,
        lossless_recovery=True,
    )
    params.update(overrides)
    built = build_scenario(ScenarioConfig(**params))
    instr = Instrumentation.recording(trace=True)
    return run_protocol_detailed(built, factory, instrumentation=instr), built


class TestAnalyzeIntegration:
    def test_components_cover_total_latency(self):
        artifacts, _ = _run_traced(RPProtocolFactory())
        report = analyze(artifacts.spans)
        assert report.breakdowns
        for b in report.breakdowns:
            assert sum(b.components.values()) == pytest.approx(b.total)
            assert all(v >= -1e-9 for v in b.components.values())

    def test_worst_is_sorted_and_bounded(self):
        artifacts, _ = _run_traced(RPProtocolFactory())
        report = analyze(artifacts.spans)
        worst = report.worst(3)
        assert len(worst) == min(3, len(report.breakdowns))
        assert all(
            worst[i].total >= worst[i + 1].total for i in range(len(worst) - 1)
        )
        assert worst[0].total == max(b.total for b in report.breakdowns)

    def test_srm_shows_peer_processing(self):
        # SRM's repair-suppression timers are real peer-side waiting;
        # the decomposition must surface them (RP peers reply on
        # arrival, so the component is ~0 there).
        artifacts, _ = _run_traced(SRMProtocolFactory())
        report = analyze(artifacts.spans)
        assert report.totals["peer_processing"] > 0

    def test_render_mentions_components_and_worst(self):
        artifacts, _ = _run_traced(RPProtocolFactory())
        factory_text = analyze(artifacts.spans).render(worst_k=2)
        for component in COMPONENTS:
            assert component in factory_text
        assert "worst 2 recoveries" in factory_text

    def test_to_dict_is_json_shaped(self):
        import json

        artifacts, _ = _run_traced(RPProtocolFactory())
        report = analyze(artifacts.spans)
        json.dumps(report.to_dict())


class TestModelCheck:
    def test_rank_failure_rates_match_ds_ratios(self):
        """Fig. 5 scenario: observed conditional failure rates per rank
        track the model's ``DS_j/DS_{j-1}`` within Monte-Carlo noise.

        Lossless recovery mode is the model's regime (requests/repairs
        never lost, exactly the paper simulator's assumption); several
        seeds are pooled to tame the noise.
        """
        factory = RPProtocolFactory()
        observed_attempts: dict[int, int] = {}
        observed_failures: dict[int, int] = {}
        predicted_sum: dict[int, float] = {}
        predicted_n: dict[int, int] = {}
        for seed in (1, 2, 3, 4):
            artifacts, _ = _run_traced(
                factory, seed=seed, num_routers=100, num_packets=40
            )
            report = analyze(
                artifacts.spans, strategies=factory.last_strategies
            )
            for stats in report.per_rank:
                if stats.rank == SOURCE_RANK:
                    # The source always holds the packet; in lossless
                    # mode its attempts must never fail.
                    assert stats.failures == 0
                    continue
                decided = stats.successes + stats.failures
                observed_attempts[stats.rank] = (
                    observed_attempts.get(stats.rank, 0) + decided
                )
                observed_failures[stats.rank] = (
                    observed_failures.get(stats.rank, 0) + stats.failures
                )
                if stats.predicted_failure is not None:
                    predicted_sum[stats.rank] = (
                        predicted_sum.get(stats.rank, 0.0)
                        + stats.predicted_failure * decided
                    )
                    predicted_n[stats.rank] = (
                        predicted_n.get(stats.rank, 0) + decided
                    )
        assert observed_attempts.get(0, 0) >= 100
        for rank, n in observed_attempts.items():
            if n < 50 or rank not in predicted_n:
                continue  # too noisy to pin
            observed = observed_failures[rank] / n
            predicted = predicted_sum[rank] / predicted_n[rank]
            # Binomial noise at n>=50 stays well inside 3 sigma ~ 0.2;
            # a systematic mismatch (e.g. wrong conditional) is far
            # larger.
            assert observed == pytest.approx(predicted, abs=0.15), (
                f"rank {rank}: observed {observed:.3f} vs model "
                f"{predicted:.3f} over {n} attempts"
            )

    def test_predicted_costs_attached_for_rp(self):
        factory = RPProtocolFactory()
        artifacts, _ = _run_traced(factory)
        report = analyze(artifacts.spans, strategies=factory.last_strategies)
        ranked = {r.rank: r for r in report.per_rank}
        assert ranked[0].predicted_failure is not None
        assert ranked[0].predicted_cost is not None and ranked[0].predicted_cost > 0
        assert ranked[SOURCE_RANK].predicted_failure == 0.0
