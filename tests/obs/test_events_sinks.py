"""Tests for typed events, the bus fast path, and sinks."""

import json

import pytest

from repro.obs.events import (
    SOURCE_RANK,
    AttemptEvent,
    BackoffEvent,
    EventBus,
    PhaseEvent,
    TimerEvent,
    event_from_dict,
)
from repro.obs.sinks import JsonlSink, NullSink, RingBufferSink, read_jsonl

ALL_EVENTS = [
    AttemptEvent(time=1.0, protocol="rp", client=7, seq=3, attempt=2,
                 rank=1, peer=12, status="timed_out", elapsed=40.0),
    AttemptEvent(time=2.0, protocol="rp", client=7, seq=3, attempt=3,
                 rank=SOURCE_RANK, peer=0, status="succeeded", elapsed=80.0),
    TimerEvent(time=3.0, protocol="srm", node=5, label="srm.request",
               action="armed", deadline=45.0),
    BackoffEvent(time=4.0, protocol="srm", node=5, seq=9, backoff=2),
    PhaseEvent(time=5.0, phase="session.complete", detail="30 packets"),
]


class TestEventRoundTrip:
    @pytest.mark.parametrize("event", ALL_EVENTS, ids=lambda e: e.kind)
    def test_to_dict_from_dict_identity(self, event):
        data = event.to_dict()
        assert data["kind"] == event.kind
        # The dict must survive JSON (what the JSONL sink writes).
        restored = event_from_dict(json.loads(json.dumps(data)))
        assert restored == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "mystery", "time": 0.0})


class TestEventBus:
    def test_no_sinks_is_inactive(self):
        assert not EventBus().active

    def test_null_sink_keeps_bus_inactive(self):
        assert not EventBus([NullSink()]).active

    def test_ring_sink_activates_bus(self):
        ring = RingBufferSink()
        bus = EventBus([NullSink()])
        assert not bus.active
        bus.add_sink(ring)
        assert bus.active

    def test_emit_fans_out(self):
        a, b = RingBufferSink(), RingBufferSink()
        bus = EventBus([a, b])
        bus.emit(ALL_EVENTS[0])
        assert a.events() == [ALL_EVENTS[0]]
        assert b.events() == [ALL_EVENTS[0]]


class TestRingBufferSink:
    def test_keeps_last_capacity_events(self):
        ring = RingBufferSink(capacity=3)
        for event in ALL_EVENTS:
            ring.write(event)
        assert len(ring) == 3
        assert ring.events() == ALL_EVENTS[-3:]
        assert ring.dropped == len(ALL_EVENTS) - 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            for event in ALL_EVENTS:
                sink.write(event)
        assert list(read_jsonl(path)) == ALL_EVENTS

    def test_every_line_is_standalone_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            for event in ALL_EVENTS:
                sink.write(event)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(ALL_EVENTS)
        for line in lines:
            assert "kind" in json.loads(line)

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.write(ALL_EVENTS[0])
        sink.close()  # idempotent

    def test_flush_every_n_hits_disk_mid_run(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, flush_every=2)
        sink.write(ALL_EVENTS[0])
        sink.write(ALL_EVENTS[1])  # second write triggers the flush
        sink.write(ALL_EVENTS[2])  # buffered again
        lines = path.read_text().strip().splitlines()
        assert len(lines) >= 2  # the flushed prefix is already durable
        sink.close()
        assert list(read_jsonl(path)) == ALL_EVENTS[:3]

    def test_rejects_negative_flush_every(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "events.jsonl", flush_every=-1)

    def test_context_manager_closes_on_mid_run_exception(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with pytest.raises(RuntimeError):
            with JsonlSink(path) as sink:
                for event in ALL_EVENTS[:3]:
                    sink.write(event)
                raise RuntimeError("simulation crashed mid-run")
        # __exit__ flushed and closed: every completed record is on disk
        # and parseable, and the sink refuses further writes.
        assert list(read_jsonl(path)) == ALL_EVENTS[:3]
        with pytest.raises(ValueError):
            sink.write(ALL_EVENTS[3])
