"""Tests for the metric instruments and their registry."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_moves_both_ways(self):
        g = Gauge("pending")
        g.set(3.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_empty_stats_are_none(self):
        h = Histogram("lat")
        assert h.count == 0
        assert h.mean is None
        assert h.min is None
        assert h.max is None
        assert h.percentile(50.0) is None

    def test_basic_stats(self):
        h = Histogram("lat")
        for v in (4.0, 1.0, 7.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 16.0
        assert h.mean == 4.0
        assert h.min == 1.0
        assert h.max == 7.0

    def test_percentiles_nearest_rank(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0.0) == 1.0
        assert h.percentile(100.0) == 100.0
        assert h.percentile(50.0) == pytest.approx(51.0, abs=1.0)
        assert h.percentile(95.0) >= h.percentile(50.0)

    def test_percentile_cache_invalidated_by_new_sample(self):
        h = Histogram("lat")
        h.observe(10.0)
        assert h.percentile(100.0) == 10.0
        h.observe(99.0)
        assert h.percentile(100.0) == 99.0

    def test_percentile_rejects_out_of_range(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.percentile(-0.1)
        with pytest.raises(ValueError):
            h.percentile(100.1)

    def test_samples_returns_copy(self):
        h = Histogram("lat")
        h.observe(1.0)
        h.samples().append(2.0)
        assert h.count == 1


class TestHistogramBinnedRegime:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Histogram("lat", exact_limit=0)
        with pytest.raises(ValueError):
            Histogram("lat", num_bins=1)

    def test_collapse_happens_past_exact_limit(self):
        h = Histogram("lat", exact_limit=10, num_bins=8)
        for v in range(10):
            h.observe(float(v))
        assert not h.binned
        h.observe(10.0)
        assert h.binned
        assert h.samples() == []  # verbatim samples gone once binned

    def test_aggregates_stay_exact_after_collapse(self):
        h = Histogram("lat", exact_limit=100, num_bins=32)
        values = [float((7 * i) % 500) for i in range(5000)]
        for v in values:
            h.observe(v)
        assert h.binned
        assert h.count == 5000
        assert h.total == sum(values)
        assert h.min == min(values)
        assert h.max == max(values)
        assert h.mean == pytest.approx(sum(values) / 5000)

    def test_memory_stays_bounded(self):
        h = Histogram("lat", exact_limit=16, num_bins=8)
        for i in range(10_000):
            h.observe(float(i % 321))
        assert len(h._bins) == 8
        assert sum(h._bins) == 10_000

    def test_binned_percentiles_near_exact(self):
        exact = Histogram("a", exact_limit=10_000)
        binned = Histogram("b", exact_limit=100, num_bins=64)
        values = [float((13 * i) % 1000) for i in range(5000)]
        for v in values:
            exact.observe(v)
            binned.observe(v)
        assert not exact.binned and binned.binned
        span = (binned.max - binned.min) / 64  # one bin width
        for q in (10.0, 50.0, 90.0, 95.0):
            assert binned.percentile(q) == pytest.approx(
                exact.percentile(q), abs=1.5 * span
            )
        # p0/p100 stay exactly min/max in both regimes.
        assert binned.percentile(0.0) == exact.percentile(0.0)
        assert binned.percentile(100.0) == exact.percentile(100.0)

    def test_out_of_range_observation_regrids(self):
        h = Histogram("lat", exact_limit=4, num_bins=8)
        for v in (10.0, 11.0, 12.0, 13.0, 14.0):
            h.observe(v)
        assert h.binned
        h.observe(500.0)   # above the grid
        h.observe(-500.0)  # below the new grid
        assert h.count == 7
        assert h.min == -500.0
        assert h.max == 500.0
        assert sum(h._bins) == 7  # no sample silently dropped
        assert h.percentile(100.0) == 500.0
        assert h.percentile(0.0) == -500.0

    def test_identical_values_collapse_cleanly(self):
        h = Histogram("lat", exact_limit=3, num_bins=4)
        for _ in range(10):
            h.observe(5.0)
        assert h.binned
        assert h.count == 10
        assert h.percentile(50.0) == pytest.approx(5.0, abs=1.0)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.gauge("a")
        assert reg.names() == ["a", "z"]

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        h = reg.histogram("h")
        h.observe(2.0)
        h.observe(4.0)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 2
        assert snap["h"]["mean"] == 3.0
        assert snap["h"]["max"] == 4.0
