"""Unit and integration tests for the invariant watchdogs."""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario, run_protocol_detailed
from repro.metrics.collectors import BandwidthLedger, RecoveryLog
from repro.obs import Instrumentation, TimeSeriesCollector
from repro.obs.events import AttemptEvent, HealthEvent
from repro.obs.health import (
    ALL_CHECKS,
    HealthConfig,
    HealthReport,
    HealthViolation,
    evaluate_health,
    render_health,
)
from repro.experiments.chaos import SRM_MAX_REQUEST_ROUNDS
from repro.protocols.srm import SRMConfig, SRMProtocolFactory
from repro.sim.faults import FaultSchedule
from repro.sim.packet import PacketKind


def _attempt(time, status, client=1, seq=0):
    return AttemptEvent(
        time=time, protocol="RP", client=client, seq=seq, status=status
    )


def _stalled_collector(silent_windows):
    """One recovery opens at t=1 and then nothing happens."""
    c = TimeSeriesCollector(window=10.0)
    c.write(_attempt(1.0, "started"))
    c.write(_attempt(2.0, "timed_out"))
    c.finalize((silent_windows + 1) * 10.0)
    return c


# -- stall watchdog -------------------------------------------------------


def test_stall_fires_at_threshold():
    report = evaluate_health(
        RecoveryLog(), BandwidthLedger(),
        timeseries=_stalled_collector(silent_windows=8),
        config=HealthConfig(stall_windows=8),
    )
    stalls = [v for v in report.violations if v.check == "progress.stall"]
    assert len(stalls) == 1
    assert stalls[0].window_start == 10.0
    assert stalls[0].details["open_recoveries"] == 1


def test_stall_below_threshold_is_silent():
    report = evaluate_health(
        RecoveryLog(), BandwidthLedger(),
        timeseries=_stalled_collector(silent_windows=5),
        config=HealthConfig(stall_windows=8),
    )
    assert not [v for v in report.violations if v.check == "progress.stall"]


def test_stall_requires_open_recoveries():
    # Quiet windows with nothing pending are idleness, not a stall.
    c = TimeSeriesCollector(window=10.0)
    c.write(_attempt(1.0, "started"))
    c.write(_attempt(2.0, "succeeded"))
    c.finalize(500.0)
    report = evaluate_health(
        RecoveryLog(), BandwidthLedger(), timeseries=c,
        config=HealthConfig(stall_windows=2),
    )
    assert not [v for v in report.violations if v.check == "progress.stall"]


def test_stall_needs_a_timeseries():
    report = evaluate_health(RecoveryLog(), BandwidthLedger())
    assert "progress.stall" not in report.checks_run


def test_health_config_validation():
    with pytest.raises(ValueError):
        HealthConfig(stall_windows=0)


# -- collector-level checks -----------------------------------------------


class _BrokenLog:
    """A RecoveryLog whose bookkeeping identity does not hold — the
    real one is structurally conserving, which is exactly why the check
    needs a stub to prove it *would* fire after a refactor broke it."""

    num_detected = 3
    num_recovered = 1
    num_abandoned = 0

    @staticmethod
    def unterminated():
        return [(1, 0)]  # 1 + 0 + 1 != 3


def test_conservation_recovery_violation():
    report = evaluate_health(_BrokenLog(), BandwidthLedger())
    checks = [v.check for v in report.violations]
    assert "conservation.recovery" in checks
    bad = next(
        v for v in report.violations if v.check == "conservation.recovery"
    )
    assert bad.details == {
        "detected": 3, "recovered": 1, "abandoned": 0, "pending": 1,
    }


def test_conservation_ledger_violation():
    ledger = BandwidthLedger()
    ledger.charge_hop(PacketKind.REQUEST)
    ledger.charge_drops(PacketKind.REQUEST, 2)  # more drops than hops
    report = evaluate_health(RecoveryLog(), ledger)
    bad = [v for v in report.violations if v.check == "conservation.ledger"]
    assert len(bad) == 1
    assert bad[0].details == {"kind": "request", "hops": 1, "drops": 2}


def test_membership_tx_drop_check_is_opt_in():
    clean = evaluate_health(RecoveryLog(), BandwidthLedger())
    assert "membership.tx_drop" not in clean.checks_run
    dirty = evaluate_health(
        RecoveryLog(), BandwidthLedger(), membership_tx_drops=3
    )
    assert [v.check for v in dirty.violations] == ["membership.tx_drop"]


def test_quiescence_drain_violation():
    log = RecoveryLog()
    log.loss_detected(1, 0, 1.0)  # never recovered nor abandoned
    report = evaluate_health(log, BandwidthLedger())
    assert [v.check for v in report.violations] == ["quiescence.drain"]
    assert report.violations[0].details["pending"] == 1


def test_clean_collectors_pass_every_check():
    log = RecoveryLog()
    log.loss_detected(1, 0, 1.0)
    log.recovered(1, 0, 2.0)
    report = evaluate_health(log, BandwidthLedger(), membership_tx_drops=0)
    assert report.ok
    assert set(report.checks_run) == set(ALL_CHECKS) - {"progress.stall"}


# -- report plumbing ------------------------------------------------------


def test_report_round_trips_through_dict():
    report = evaluate_health(
        RecoveryLog(), BandwidthLedger(),
        timeseries=_stalled_collector(silent_windows=8),
    )
    assert not report.ok
    again = HealthReport.from_dict(report.to_dict())
    assert again.to_dict() == report.to_dict()
    assert isinstance(again.violations[0], HealthViolation)


def test_render_health_includes_sparklines():
    c = _stalled_collector(silent_windows=8)
    report = evaluate_health(RecoveryLog(), BandwidthLedger(), timeseries=c)
    text = render_health(report, c)
    assert "FAIL progress.stall" in text
    assert "windows:" in text
    assert "open_recoveries" in text


# -- end-to-end sensitivity ----------------------------------------------
#
# The watchdog's reason to exist: a black-holed network with a bounded
# retry policy stalls (waiting out capped backoffs, abandoning late),
# and the stall check must see it — while a clean run of the same
# scenario must stay silent.

_SCENARIO = ScenarioConfig(
    seed=3, num_routers=40, loss_prob=0.15, num_packets=10,
    lossless_recovery=False,
)


def _run_with_timeseries(faults=None, factory=None, window=5.0):
    built = build_scenario(_SCENARIO)
    instr = Instrumentation.recording(
        timeseries=TimeSeriesCollector(window=window)
    )
    try:
        artifacts = run_protocol_detailed(
            built,
            factory if factory is not None else SRMProtocolFactory(),
            instrumentation=instr,
            faults=faults,
        )
    finally:
        instr.close()
    return artifacts, instr


def test_injected_blackhole_raises_stall_violation():
    hardened = SRMProtocolFactory(
        SRMConfig(max_request_rounds=SRM_MAX_REQUEST_ROUNDS)
    )
    artifacts, instr = _run_with_timeseries(
        faults=FaultSchedule(
            request_blackhole_prob=1.0, repair_blackhole_prob=1.0
        ),
        factory=hardened,
    )
    assert artifacts.health is not None
    stalls = [
        v for v in artifacts.health.violations if v.check == "progress.stall"
    ]
    assert stalls, "full blackhole must register as a progress stall"
    assert all(v.window_start >= 0 for v in stalls)
    # The violations were mirrored onto the event bus.
    health_events = [
        e for e in instr.ring_events() if isinstance(e, HealthEvent)
    ]
    assert len(health_events) == len(artifacts.health.violations)


def test_clean_run_raises_no_violations():
    # RP at the default window width (50 ms), mirroring the `repro
    # health` defaults.  (SRM with *unbounded* request rounds can sit in
    # a legitimate exponential-backoff gap longer than the default
    # stall horizon — tune `window`/`stall_windows` up when watching
    # protocols whose healthy quiet periods grow without bound.)
    from repro.protocols.rp import RPProtocolFactory

    artifacts, _ = _run_with_timeseries(
        factory=RPProtocolFactory(), window=50.0
    )
    assert artifacts.health is not None
    assert artifacts.health.ok, [
        v.render() for v in artifacts.health.violations
    ]
    assert artifacts.timeseries is not None
    assert artifacts.timeseries.num_windows > 0
