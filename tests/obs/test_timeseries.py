"""Unit tests for the windowed sim-time telemetry collector."""

import pytest

from repro.obs.events import AttemptEvent, BackoffEvent, TimerEvent
from repro.obs.timeseries import (
    SPARK_LEVELS,
    TimeSeriesCollector,
    Window,
    render_sparklines,
    sparkline,
)


def _attempt(time, status, client=1, seq=0, protocol="RP"):
    return AttemptEvent(
        time=time, protocol=protocol, client=client, seq=seq, status=status
    )


# -- windowing ------------------------------------------------------------


def test_events_land_in_their_window():
    c = TimeSeriesCollector(window=10.0)
    c.write(_attempt(3.0, "started"))
    c.write(_attempt(12.0, "succeeded"))
    c.finalize(20.0)
    assert c.num_windows == 2
    first, second = c.windows
    assert (first.start, first.end) == (0.0, 10.0)
    assert first.attempt_starts == 1
    assert first.starts_by_protocol == {"RP": 1}
    assert second.succeeded == 1


def test_window_boundary_belongs_to_the_next_window():
    c = TimeSeriesCollector(window=10.0)
    c.write(_attempt(10.0, "started"))
    c.finalize(10.0)
    assert c.windows[-1].start == 10.0
    assert c.windows[-1].attempt_starts == 1


def test_empty_gap_windows_materialize_as_zero():
    c = TimeSeriesCollector(window=10.0)
    c.write(_attempt(1.0, "started"))
    c.write(_attempt(55.0, "succeeded", client=2))
    c.finalize(60.0)
    series = c.series()
    assert series["bus_events"] == [1, 0, 0, 0, 0, 1]
    # The started-but-unterminated recovery stays open through the gap.
    assert series["open_recoveries"][0] == 1


def test_negative_time_rejected():
    c = TimeSeriesCollector()
    with pytest.raises(ValueError):
        c.write(_attempt(-1.0, "started"))


def test_constructor_validation():
    with pytest.raises(ValueError):
        TimeSeriesCollector(window=0.0)
    with pytest.raises(ValueError):
        TimeSeriesCollector(max_windows=1)


# -- coalescing -----------------------------------------------------------


def test_coalescing_bounds_window_count():
    c = TimeSeriesCollector(window=1.0, max_windows=4)
    for t in range(16):
        c.write(_attempt(float(t), "started", client=t, seq=t))
    c.finalize(16.0)
    assert c.num_windows <= 4
    assert c.coalesced == 2
    assert c.width == 4.0
    # No event was lost to the merges.
    assert sum(w.attempt_starts for w in c.windows) == 16


def test_merge_adds_counts_and_keeps_later_gauges():
    a = Window(0.0, 10.0)
    b = Window(10.0, 10.0)
    a.succeeded = 2
    b.succeeded = 3
    a.open_recoveries = 7
    b.open_recoveries = 1
    a.merge(b)
    assert a.width == 20.0
    assert a.succeeded == 5
    assert a.open_recoveries == 1  # the later sample


# -- phase tracking -------------------------------------------------------


def test_open_recovery_phase_split():
    c = TimeSeriesCollector(window=100.0)
    c.write(_attempt(1.0, "started"))          # open, requesting
    c.write(_attempt(2.0, "started", client=2))
    c.write(_attempt(3.0, "timed_out", client=2))  # still open, waiting
    c.finalize(50.0)
    w = c.windows[-1]
    assert (w.open_recoveries, w.requesting, w.waiting) == (2, 1, 1)


def test_terminal_statuses_close_the_recovery():
    c = TimeSeriesCollector(window=100.0)
    for client, status in ((1, "succeeded"), (2, "retracted"), (3, "abandoned")):
        c.write(_attempt(1.0, "started", client=client))
        c.write(_attempt(2.0, status, client=client))
    c.finalize(50.0)
    assert c.windows[-1].open_recoveries == 0


def test_timer_and_backoff_counting():
    c = TimeSeriesCollector(window=10.0)
    c.write(TimerEvent(time=1.0, action="armed"))
    c.write(TimerEvent(time=2.0, action="fired"))
    c.write(TimerEvent(time=3.0, action="cancelled"))
    c.write(BackoffEvent(time=4.0))
    c.finalize(10.0)
    w = c.windows[0]
    assert (w.timers_armed, w.timers_fired, w.timers_cancelled) == (1, 1, 1)
    assert w.backoffs == 1


# -- finalize / digests ---------------------------------------------------


def test_finalize_is_idempotent():
    c = TimeSeriesCollector(window=10.0)
    c.write(_attempt(1.0, "started"))
    c.finalize(25.0)
    n = c.num_windows
    c.finalize(99.0)  # ignored: already finalized
    assert c.num_windows == n
    assert c.end_time == 25.0


def test_digests_change_when_the_series_changes():
    def build(second_time):
        c = TimeSeriesCollector(window=10.0)
        c.write(_attempt(1.0, "started"))
        c.write(_attempt(second_time, "succeeded"))
        c.finalize(40.0)
        return c.digests()

    a, b = build(15.0), build(25.0)
    assert a.keys() == b.keys()
    assert a["succeeded"]["total"] == b["succeeded"]["total"] == 1
    assert a["succeeded"]["crc"] != b["succeeded"]["crc"]
    assert "window_start" not in a


def test_per_protocol_attempt_series():
    c = TimeSeriesCollector(window=10.0)
    c.write(_attempt(1.0, "started", protocol="RP"))
    c.write(_attempt(2.0, "started", client=2, protocol="SRM"))
    c.finalize(10.0)
    series = c.series()
    assert series["attempts.RP"] == [1]
    assert series["attempts.SRM"] == [1]
    assert c.protocols() == ["RP", "SRM"]


# -- sparklines -----------------------------------------------------------


def test_sparkline_scales_and_marks_sparse_values():
    line = sparkline([0, 1, 100])
    assert line[0] == " "
    assert line[1] == SPARK_LEVELS[1]  # nonzero never disappears
    assert line[2] == SPARK_LEVELS[-1]


def test_sparkline_folds_long_series():
    assert len(sparkline([1] * 1000, width=64)) <= 64
    assert sparkline([]) == ""
    assert sparkline([0, 0, 0]) == "   "


def test_render_sparklines_header_and_rows():
    c = TimeSeriesCollector(window=10.0)
    c.write(_attempt(1.0, "started"))
    c.write(_attempt(12.0, "succeeded"))
    c.finalize(20.0)
    block = render_sparklines(c)
    assert block.startswith("windows: 2 x 10 ms")
    assert "attempt_starts" in block
    assert "open_recoveries" in block
