"""Unit tests for the cross-run regression ledger."""

import json

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario, run_protocol_detailed
from repro.obs import Instrumentation, TimeSeriesCollector
from repro.obs.ledger import (
    RegressionLedger,
    RunFingerprint,
    config_hash,
    diff_fingerprints,
    load_fingerprint,
)
from repro.protocols.rp import RPProtocolFactory

CONFIG = ScenarioConfig(
    seed=7, num_routers=30, loss_prob=0.08, num_packets=6,
    lossless_recovery=False,
)


def _fingerprint(label="run", **overrides):
    counters = {"losses_detected": 10, "avg_latency": 42.5}
    counters.update(overrides)
    return RunFingerprint.from_payload(
        label, {"seed": 7}, counters, meta={"note": "x"}
    )


# -- config hashing -------------------------------------------------------


def test_config_hash_is_order_insensitive_and_knob_sensitive():
    a = config_hash({"seed": 1, "loss": 0.05})
    b = config_hash({"loss": 0.05, "seed": 1})
    c = config_hash({"seed": 2, "loss": 0.05})
    assert a == b
    assert a != c


def test_config_hash_accepts_dataclasses():
    assert config_hash(CONFIG) == config_hash(CONFIG)
    other = ScenarioConfig(
        seed=8, num_routers=30, loss_prob=0.08, num_packets=6,
        lossless_recovery=False,
    )
    assert config_hash(CONFIG) != config_hash(other)


# -- diffing --------------------------------------------------------------


def test_identical_fingerprints_diff_clean():
    diff = diff_fingerprints(_fingerprint(), _fingerprint())
    assert diff.clean
    assert "MATCH" in diff.render()


def test_counter_change_is_reported():
    diff = diff_fingerprints(
        _fingerprint(), _fingerprint(losses_detected=11)
    )
    assert not diff.clean
    assert diff.changed == {"counters.losses_detected": (10, 11)}
    assert "CHANGED counters.losses_detected" in diff.render()


def test_meta_never_participates_in_diff():
    a = _fingerprint()
    b = RunFingerprint.from_payload(
        "run", {"seed": 7},
        {"losses_detected": 10, "avg_latency": 42.5},
        meta={"note": "entirely different"},
    )
    assert diff_fingerprints(a, b).clean


def test_config_mismatch_is_flagged():
    b = RunFingerprint.from_payload(
        "run", {"seed": 999}, {"losses_detected": 10, "avg_latency": 42.5}
    )
    diff = diff_fingerprints(_fingerprint(), b)
    assert not diff.config_match
    assert "CONFIG MISMATCH" in diff.render()


def test_missing_counters_split_into_only_in_sides():
    a = RunFingerprint.from_payload("a", {}, {"x": 1, "shared": 0})
    b = RunFingerprint.from_payload("b", {}, {"y": 2, "shared": 0})
    diff = diff_fingerprints(a, b)
    assert diff.only_in_a == ["counters.x"]
    assert diff.only_in_b == ["counters.y"]


def test_series_digests_are_compared_flat():
    a = RunFingerprint.from_payload(
        "a", {}, {}, series={"succeeded": {"crc": 1, "total": 5}}
    )
    b = RunFingerprint.from_payload(
        "b", {}, {}, series={"succeeded": {"crc": 2, "total": 5}}
    )
    diff = diff_fingerprints(a, b)
    assert diff.changed == {"series.succeeded.crc": (1, 2)}


# -- persistence ----------------------------------------------------------


def test_fingerprint_round_trips_through_file(tmp_path):
    path = tmp_path / "fp.json"
    original = _fingerprint()
    original.save(path)
    loaded = RunFingerprint.load(path)
    assert loaded.to_dict() == original.to_dict()
    assert diff_fingerprints(original, loaded).clean


def test_schema_version_is_enforced(tmp_path):
    path = tmp_path / "fp.json"
    _fingerprint().save(path)
    data = json.loads(path.read_text())
    data["schema"] = 999
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="schema"):
        RunFingerprint.load(path)


def test_ledger_appends_and_returns_latest(tmp_path):
    ledger = RegressionLedger(tmp_path / "ledger.jsonl")
    assert ledger.entries() == []
    assert ledger.latest() is None
    ledger.append(_fingerprint("first"))
    ledger.append(_fingerprint("second", losses_detected=11))
    entries = ledger.entries()
    assert [e.label for e in entries] == ["first", "second"]
    assert ledger.latest().label == "second"
    assert ledger.latest(label="first").counters["losses_detected"] == 10


def test_load_fingerprint_dispatches_on_suffix(tmp_path):
    json_path = tmp_path / "fp.json"
    _fingerprint("solo").save(json_path)
    assert load_fingerprint(json_path).label == "solo"

    ledger_path = tmp_path / "ledger.jsonl"
    RegressionLedger(ledger_path).append(_fingerprint("newest"))
    assert load_fingerprint(ledger_path).label == "newest"

    with pytest.raises(ValueError, match="no entries"):
        load_fingerprint(tmp_path / "empty.jsonl")


# -- from_artifacts -------------------------------------------------------


def test_from_artifacts_is_deterministic_and_diffable():
    def one_run():
        built = build_scenario(CONFIG)
        instr = Instrumentation.recording(timeseries=TimeSeriesCollector())
        try:
            artifacts = run_protocol_detailed(
                built, RPProtocolFactory(), instrumentation=instr
            )
        finally:
            instr.close()
        return RunFingerprint.from_artifacts("t", CONFIG, artifacts)

    a, b = one_run(), one_run()
    assert diff_fingerprints(a, b).clean
    assert a.counters["health_violations"] == 0
    assert a.counters["losses_detected"] > 0
    assert a.series  # timeseries digests present
    assert a.meta["protocol"] == "RP"
