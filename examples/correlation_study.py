"""Loss-correlation study — why the planner avoids nearby peers.

The paper's introduction: "Nearby receivers/proxies can be efficient,
but they are tightly correlated in terms of packet loss since they share
many common links in the multicast tree.  Receivers/proxies closer to
the source have a better chance of receiving the lost packet, but the
farther, the longer the latency is."

This example makes that trade-off concrete for one client: it prints the
analytic loss correlation with its nearest peers vs its chosen strategy
peers, the tree and strategy censuses, and verifies the analytic pair
losses against direct Monte Carlo sampling.

Run:  python examples/correlation_study.py
"""

import numpy as np

from repro.analysis import (
    loss_correlation,
    pair_loss_matrix,
    strategy_census,
    tree_census,
)
from repro.core.montecarlo import TreeLossSampler
from repro.core.planner import RPPlanner
from repro.net.generators import TopologyConfig, random_backbone
from repro.net.mcast_tree import random_multicast_tree
from repro.net.routing import RoutingTable
from repro.sim.rng import RngStreams


def main() -> None:
    p = 0.05
    streams = RngStreams(33)
    topology = random_backbone(
        TopologyConfig(num_routers=120, loss_prob=p), streams.get("topology")
    )
    tree = random_multicast_tree(topology, streams.get("tree"))
    routing = RoutingTable(topology)
    print(f"tree census: {tree_census(tree)}")

    planner = RPPlanner(tree, routing)
    plans = planner.plan_all()
    census = strategy_census(plans)
    print(
        f"strategies: mean list length {census.mean_list_length:.2f}, "
        f"{census.fraction_with_peers:.0%} of clients use peers, "
        f"mean E[delay] {census.mean_expected_delay:.1f} ms vs "
        f"{census.mean_direct_source_delay:.1f} ms straight-to-source "
        f"({census.mean_planned_speedup:.2f}x)"
    )

    # Pick a deep client and compare nearest peers vs planned peers.
    client = max(tree.clients, key=tree.depth)
    others = [c for c in tree.clients if c != client]
    nearest = sorted(others, key=lambda c: routing.rtt(client, c))[:3]
    planned = list(plans[client].peer_nodes)
    print(f"\nclient {client} (depth {tree.depth(client)}):")

    def describe(label: str, peers: list[int]) -> None:
        if not peers:
            print(f"  {label}: (none)")
            return
        corr = loss_correlation(tree, p, [client, *peers])
        pairs = ", ".join(
            f"{peer}: corr={corr[0, k + 1]:.2f} rtt={routing.rtt(client, peer):.0f}ms"
            for k, peer in enumerate(peers)
        )
        print(f"  {label}: {pairs}")

    describe("nearest-by-RTT peers", nearest)
    describe("RP-planned peers   ", planned)

    # Cross-check the analytic joint losses with Monte Carlo.
    probe = [client] + nearest[:2]
    analytic = pair_loss_matrix(tree, p, probe)
    sampler = TreeLossSampler(tree, p)
    empirical = sampler.empirical_pair_loss_matrix(
        probe, np.random.default_rng(1), trials=200_000
    )
    max_err = float(np.max(np.abs(analytic - empirical)))
    print(
        f"\nanalytic vs Monte Carlo pair-loss matrix: "
        f"max |error| = {max_err:.4f} over {len(probe)}x{len(probe)} entries"
    )
    assert max_err < 0.01


if __name__ == "__main__":
    main()
