"""Strategy analysis — inside the RP planner.

Walks the full section-3/4 pipeline for one client of a dumbbell
topology (where loss correlation is extreme):

1. competitive equivalence classes and the candidate clients;
2. the strategy graph and what Algorithm 1 picks;
3. restricted strategies (the paper's "remove the (u → S) edge");
4. the exact finite-p extension: how close the reliable-network plan
   stays to the truly optimal chain as the loss rate grows.

Run:  python examples/strategy_analysis.py
"""

from repro.core.candidates import candidate_clients, competitive_classes
from repro.core.exact_model import ExactLossModel, exact_best_any_order
from repro.core.planner import RPPlanner
from repro.core.strategy_graph import StrategyRestrictions
from repro.core.timeouts import ProportionalTimeout
from repro.net.generators import TopologyConfig, random_backbone
from repro.net.mcast_tree import random_multicast_tree
from repro.net.routing import RoutingTable
from repro.sim.rng import RngStreams


def main() -> None:
    streams = RngStreams(23)
    topology = random_backbone(
        TopologyConfig(num_routers=80), streams.get("topology")
    )
    tree = random_multicast_tree(topology, streams.get("tree"))
    routing = RoutingTable(topology)
    planner_probe = RPPlanner(tree, routing)
    # Pick the client with the richest optimal list so there is
    # something to look at.
    client = max(
        tree.clients, key=lambda c: (len(planner_probe.plan(c)), tree.depth(c))
    )
    print(f"client {client}: {tree.depth(client)} tree hops from the source\n")

    # 1. competitive classes -------------------------------------------------
    classes = competitive_classes(tree, client)
    print(f"competitive classes ({len(classes)}):")
    for ancestor in sorted(classes, key=tree.depth, reverse=True):
        members = classes[ancestor]
        print(
            f"  meet at router {ancestor:3d} (DS={tree.depth(ancestor)}): "
            f"{len(members)} peer(s) -> {members[:6]}"
            + (" ..." if len(members) > 6 else "")
        )

    candidates = candidate_clients(tree, routing, client)
    print(f"\ncandidate clients (min-RTT per class, descending DS):")
    for c in candidates[:8]:
        print(f"  peer {c.node:3d}  DS={c.ds:2d}  rtt={c.rtt:7.2f} ms")
    if len(candidates) > 8:
        print(f"  ... and {len(candidates) - 8} more")

    # 2. the optimal strategy ------------------------------------------------
    planner = RPPlanner(tree, routing)
    plan = planner.plan(client)
    print(
        f"\nAlgorithm 1 picks {list(plan.peer_nodes)} then the source "
        f"(expected delay {plan.expected_delay:.2f} ms; going straight to "
        f"the source would cost {plan.source_rtt:.2f} ms)"
    )

    # 3. restrictions --------------------------------------------------------
    restricted = RPPlanner(
        tree, routing,
        restrictions=StrategyRestrictions(forbid_direct_source=True),
    ).plan(client)
    capped = RPPlanner(
        tree, routing, restrictions=StrategyRestrictions(max_list_length=1)
    ).plan(client)
    print("\nrestricted strategies:")
    print(
        f"  forbid direct source: {list(restricted.peer_nodes)} "
        f"-> {restricted.expected_delay:.2f} ms"
    )
    print(
        f"  at most one peer:     {list(capped.peer_nodes)} "
        f"-> {capped.expected_delay:.2f} ms"
    )

    # 4. exact-model robustness ----------------------------------------------
    print("\nexact-model check (plan vs exhaustive optimum, <=3 peers):")
    policy = ProportionalTimeout()
    probe_nodes = list(
        dict.fromkeys([*plan.peer_nodes, *(c.node for c in candidates[:6])])
    )[:6]
    peers = ExactLossModel.peers_from_tree(
        tree, routing, client, probe_nodes, policy
    )
    by_node = {p.node: p for p in peers}
    planned = [by_node[n] for n in plan.peer_nodes if n in by_node]
    for p in (0.01, 0.05, 0.10, 0.20):
        model = ExactLossModel(tree.depth(client), p)
        planned_delay = model.expected_delay(planned, plan.source_rtt)
        optimal_delay, _ = exact_best_any_order(
            tree.depth(client), p, peers, plan.source_rtt, max_length=3
        )
        print(
            f"  p={p:4.0%}: plan {planned_delay:8.2f} ms, "
            f"optimal {optimal_delay:8.2f} ms "
            f"(gap {100 * (planned_delay / optimal_delay - 1):5.1f}%)"
        )


if __name__ == "__main__":
    main()
