"""Trace-driven protocol debugging.

When a recovery behaves unexpectedly, the first question is "what did
the packets actually do?"  This example attaches a
:class:`~repro.sim.trace.TraceRecorder` to a tiny deterministic session,
injects a loss by hand, and prints the full life of one recovery under
RP: the data packet dying on a link, the gap detection, the unicast
request finding a peer, and the repair coming back.

Run:  python examples/trace_debugging.py
"""

import numpy as np

from repro.core.planner import RPPlanner
from repro.metrics.collectors import BandwidthLedger, RecoveryLog
from repro.net.mcast_tree import MulticastTree
from repro.net.render import render_tree
from repro.net.routing import RoutingTable
from repro.net.topology import NodeKind, Topology
from repro.protocols.base import CompletionTracker, StreamConfig, StreamDriver
from repro.protocols.rp import RPProtocolFactory
from repro.sim.engine import EventQueue
from repro.sim.network import SimNetwork
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceFilter, TraceRecorder
from repro.sim.packet import PacketKind


def build_session():
    """S - r0 - {r1 - {cA, cB}, cC}; we will lose seq 1 on r1->cA."""
    topo = Topology()
    r0, r1 = topo.add_nodes(2, NodeKind.ROUTER)
    s = topo.add_node(NodeKind.SOURCE)
    ca, cb, cc = topo.add_nodes(3, NodeKind.CLIENT)
    for a, b in ((s, r0), (r0, r1), (r1, ca), (r1, cb), (r0, cc)):
        topo.add_link(a, b, 2.0)
    tree = MulticastTree(topo, s, {r0: s, r1: r0, ca: r1, cb: r1, cc: r0})
    return topo, tree, (s, ca, cb, cc)


class OneShotLossRng:
    """A 'random' stream that drops exactly the n-th loss draw."""

    def __init__(self, drop_at: int):
        self.calls = 0
        self.drop_at = drop_at

    def random(self):
        self.calls += 1
        return 0.0 if self.calls == self.drop_at else 1.0


def main() -> None:
    topo, tree, (s, ca, cb, cc) = build_session()
    print("the session tree:")
    print(render_tree(tree))

    routing = RoutingTable(topo)
    # Give links tiny nominal loss so the loss stream is consulted, and
    # rig the stream to drop exactly one traversal: the 8th DATA draw
    # (packet seq 1 on the r1->cA link, as the trace will show).
    topo.set_loss_prob(1e-9)
    events = EventQueue()
    log = RecoveryLog()
    ledger = BandwidthLedger()
    net = SimNetwork(
        events, topo, routing, tree,
        loss_rng=np.random.default_rng(0),
        ledger=ledger,
        data_loss_rng=OneShotLossRng(drop_at=8),
    )
    recorder = TraceRecorder(
        TraceFilter(seqs=frozenset({1}))  # follow sequence 1 only
    ).attach(net)

    tracker = CompletionTracker(3, 3)
    factory = RPProtocolFactory()
    source_agent = factory.install(net, log, tracker, RngStreams(0), 3)
    StreamDriver(net, source_agent, StreamConfig(num_packets=3), tracker).start()
    events.run(stop_when=lambda: tracker.complete, max_events=100_000)

    drops = recorder.drops()
    assert len(drops) == 1 and drops[0].packet_kind is PacketKind.DATA
    victim = next(c for c in (ca, cb, cc) if log.was_lost(c, 1))
    print(
        f"\nthe rigged loss hit link {drops[0].peer}->{drops[0].node}, "
        f"so client {victim} lost sequence 1"
    )
    print(f"strategy of client {victim}: "
          f"{list(net.agent_at(victim).strategy.peer_nodes)} then the source")
    print("\nthe life of sequence 1 (trace, filtered):")
    print(recorder.render(limit=40))
    print(f"\nrecovery log: client {victim} recovered: "
          f"{log.is_recovered(victim, 1)}, "
          f"latency {log.latencies()[0]:.1f} ms")
    assert log.is_recovered(victim, 1)


if __name__ == "__main__":
    main()
