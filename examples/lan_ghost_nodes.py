"""Shared-link (LAN) modeling with ghost nodes — paper section 2.2 / Fig 2.

The RP model uses only point-to-point links; a shared broadcast medium
(an office LAN with several group members) is rewritten into a star of
point-to-point spokes through a synthetic GHOST node — "the ghost node
may be viewed as the shared link itself".

This example attaches a 4-member LAN to a backbone, expands it, and
shows (a) the expansion preserves end-to-end delays and loss, and
(b) the RP planner then treats LAN neighbours exactly like any other
competitive class — one candidate represents the whole LAN.

Run:  python examples/lan_ghost_nodes.py
"""

from repro.core.candidates import competitive_classes
from repro.core.planner import RPPlanner
from repro.net.generators import TopologyConfig, random_backbone
from repro.net.ghost import SharedLink, expand_shared_links
from repro.net.mcast_tree import MulticastTree, random_multicast_tree
from repro.net.routing import RoutingTable
from repro.net.topology import NodeKind
from repro.sim.rng import RngStreams


def main() -> None:
    streams = RngStreams(41)
    topology = random_backbone(
        TopologyConfig(num_routers=30), streams.get("topology")
    )

    # Attach a 4-host LAN: hosts + their access router share one medium.
    access_router = 5
    lan_hosts = topology.add_nodes(4, NodeKind.CLIENT)
    lan = SharedLink(
        attached=tuple([access_router, *lan_hosts]),
        delay=2.0,
        loss_prob=0.02,
    )
    expanded, ghost_ids = expand_shared_links(topology, [lan])
    ghost = ghost_ids[0]
    print(
        f"LAN with hosts {lan_hosts} behind router {access_router} "
        f"became ghost node {ghost} with {expanded.degree(ghost)} spokes"
    )
    print(
        f"host-to-host delay through the medium: "
        f"{expanded.path_delay([lan_hosts[0], ghost, lan_hosts[1]]):.2f} ms "
        f"(medium delay 2.0 ms preserved)"
    )

    # Build the session on the expanded topology.
    tree = random_multicast_tree(expanded, streams.get("tree"))
    routing = RoutingTable(expanded)

    # The LAN hosts hang off the ghost: from any one of them, the other
    # three are a single competitive class (same first common router).
    client = lan_hosts[0]
    if not tree.contains(client):
        print("client not reached by the tree on this seed; try another seed")
        return
    classes = competitive_classes(tree, client)
    lan_class = [
        members for members in classes.values()
        if any(h in members for h in lan_hosts[1:])
    ]
    print(
        f"\ncompetitive classes for LAN host {client}: {len(classes)} total; "
        f"the LAN neighbours form {len(lan_class)} class(es): {lan_class}"
    )

    plan = RPPlanner(tree, routing).plan(client)
    on_lan = [n for n in plan.peer_nodes if n in lan_hosts]
    print(
        f"RP strategy for host {client}: peers {list(plan.peer_nodes)} "
        f"({len(on_lan)} from its own LAN), expected delay "
        f"{plan.expected_delay:.2f} ms"
    )
    print(
        "\nnote: LAN neighbours share the whole source path, so the"
        " planner uses at most one of them — and only if its DS is"
        " favourable (the paper's warning about nearby, highly"
        " correlated peers)."
    )


if __name__ == "__main__":
    main()
