"""Quickstart: plan a recovery strategy and simulate a lossy session.

Builds the paper's random network (100-router backbone, 5% per-link
loss), computes the RP prioritized list for one client, and runs one
simulated multicast session under each recovery protocol.

Run:  python examples/quickstart.py
"""

from repro import (
    RMAProtocolFactory,
    RPPlanner,
    RPProtocolFactory,
    ScenarioConfig,
    SRMProtocolFactory,
    build_scenario,
    run_protocol,
)


def main() -> None:
    config = ScenarioConfig(
        seed=7, num_routers=100, loss_prob=0.05, num_packets=20
    )
    built = build_scenario(config)
    print(
        f"network: {built.topology.num_nodes} nodes, "
        f"{built.topology.num_links} links, {built.num_clients} clients"
    )

    # --- the paper's contribution: the RP planner --------------------
    planner = RPPlanner(built.tree, built.routing)
    client = built.clients[0]
    strategy = planner.plan(client)
    print(f"\nRP strategy for client {client} "
          f"(DS_u = {strategy.ds_u} hops from the source):")
    for rank, (candidate, timeout) in enumerate(
        zip(strategy.attempts, strategy.timeouts), start=1
    ):
        print(
            f"  {rank}. ask peer {candidate.node:4d}  "
            f"DS={candidate.ds:2d}  rtt={candidate.rtt:7.2f} ms  "
            f"timeout={timeout:7.2f} ms"
        )
    print(f"  finally: source (rtt {strategy.source_rtt:.2f} ms)")
    print(f"  expected recovery delay: {strategy.expected_delay:.2f} ms")

    # --- simulate one session per protocol ---------------------------
    print("\nsimulated session (20 packets, p = 5%):")
    print(f"{'protocol':8} {'losses':>7} {'latency ms':>11} {'bw hops':>8}")
    for factory in (RPProtocolFactory(), SRMProtocolFactory(), RMAProtocolFactory()):
        summary = run_protocol(built, factory)
        assert summary.fully_recovered
        latency = (
            f"{summary.avg_latency:11.2f}"
            if summary.avg_latency is not None else f"{'n/a':>11}"
        )
        print(
            f"{summary.protocol:8} {summary.losses_detected:7d} "
            f"{latency} {summary.bandwidth_per_recovery:8.2f}"
        )


if __name__ == "__main__":
    main()
