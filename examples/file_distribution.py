"""File distribution — the paper's motivating workload.

Section 2: "We are interested in the reliable multicast problem over a
reliable network, for example, distributing a large file to a number of
clients ...  Such applications need full reliability."

This example distributes a 200-"block" file to the clients of a
500-router backbone and compares how much recovery work each protocol
does to make every client whole, including a per-client completion-time
summary (when the last missing block arrived — what a user of the file
transfer actually feels).

Run:  python examples/file_distribution.py
"""

from repro import (
    RMAProtocolFactory,
    RPProtocolFactory,
    ScenarioConfig,
    SRMProtocolFactory,
    build_scenario,
)
from repro.experiments.report import format_table, improvement_pct
from repro.experiments.runner import run_protocol_detailed


def main() -> None:
    config = ScenarioConfig(
        seed=11,
        num_routers=500,
        loss_prob=0.05,
        num_packets=200,       # file blocks
        data_interval=5.0,     # steady 200-block stream
    )
    built = build_scenario(config)
    file_mb = config.num_packets * 1.5 / 1000  # pretend 1.5 KB blocks
    print(
        f"distributing a {config.num_packets}-block file "
        f"(~{file_mb:.1f} MB at 1500 B MTU) to {built.num_clients} clients"
        f" over a {config.num_routers}-router backbone, p = 5%\n"
    )

    rows = []
    results = {}
    logs = {}
    for factory in (RPProtocolFactory(), SRMProtocolFactory(), RMAProtocolFactory()):
        artifacts = run_protocol_detailed(built, factory)
        summary = artifacts.summary
        assert summary.fully_recovered, "file transfer must fully complete"
        results[summary.protocol] = summary
        logs[summary.protocol] = artifacts.log
        rows.append([
            summary.protocol,
            str(summary.losses_detected),
            "n/a" if summary.avg_latency is None else f"{summary.avg_latency:.1f}",
            f"{summary.p95_latency:.1f}",
            f"{summary.bandwidth_per_recovery:.1f}",
            f"{summary.recovery_hops}",
            f"{summary.sim_time:.0f}",
        ])
    print(format_table(
        ["protocol", "blocks lost", "recovery ms", "p95 ms", "bw hops/rec",
         "total rec hops", "session ms"],
        rows,
    ))

    # Per-client completion: when did the unluckiest clients become whole?
    print("\nworst five clients by completion time (RP):")
    stats = logs["RP"].per_client_stats()
    # Clients that recovered nothing have no completion time (None).
    worst = sorted(
        stats.items(), key=lambda kv: -(kv[1][2] if kv[1][2] is not None else 0.0)
    )[:5]
    print(format_table(
        ["client", "blocks lost", "mean recovery ms", "whole at ms"],
        [
            [
                str(c),
                str(n),
                "n/a" if mean is None else f"{mean:.1f}",
                "n/a" if last is None else f"{last:.1f}",
            ]
            for c, (n, mean, last) in worst
        ],
    ))

    rp, srm, rma = results["RP"], results["SRM"], results["RMA"]
    print(
        f"\nRP recovered lost blocks "
        f"{improvement_pct(rp.avg_latency, srm.avg_latency):.0f}% faster than SRM"
        f" and {improvement_pct(rp.avg_latency, rma.avg_latency):.0f}% faster"
        f" than RMA, while using"
        f" {improvement_pct(rp.recovery_hops, srm.recovery_hops):.0f}% fewer"
        f" recovery hops than SRM."
    )


if __name__ == "__main__":
    main()
